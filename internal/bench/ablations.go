package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cosy/kext"
	"repro/internal/kefence"
	"repro/internal/kgcc"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/sim"
	"repro/internal/splay"
	"repro/internal/sys"
	"repro/internal/workload"
)

// Ablations exercises the design choices DESIGN.md calls out.
func Ablations() ([]*Table, error) {
	var tables []*Table
	for _, fn := range []func() (*Table, error){
		AblationCosySegModes,
		AblationKGCCElim,
		AblationKefencePlacement,
		AblationKmonBlocking,
		AblationSplayLocality,
	} {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// AblationCosySegModes compares Cosy's two protection modes (§2.3):
// the fully isolated segment pays a far call per user-function entry;
// the data-only segment pays nothing but leaves code unprotected.
func AblationCosySegModes() (*Table, error) {
	t := &Table{ID: "A1", Title: "Cosy isolation: isolated segment vs data segment"}
	cfg := workload.DefaultDB()
	runMode := func(mode kext.Mode) (Phase, *kext.Engine, error) {
		var e *kext.Engine
		ph, _, err := RunPhase(core.Options{},
			func(s *core.System) { e = s.CosyEngine(mode) },
			func(pr *sys.Proc) error { return workload.DBSetup(pr, cfg) },
			func(pr *sys.Proc) error {
				_, err := workload.SeqScanCosy(pr, e, cfg)
				return err
			})
		return ph, e, err
	}
	iso, eIso, err := runMode(kext.ModeIsolated)
	if err != nil {
		return nil, err
	}
	data, eData, err := runMode(kext.ModeDataSeg)
	if err != nil {
		return nil, err
	}
	ov := overhead(data.CPU(), iso.CPU())
	t.Add("isolated-segment overhead vs data-segment", "involves overhead (far calls)",
		pct(ov), ov > 0 && ov < 1.0)
	t.Add("segment entries charged (isolated)", "> 0",
		fmt.Sprintf("%d", eIso.Stats.SegEntries), eIso.Stats.SegEntries > 0)
	t.Add("segment entries charged (data-only)", "0",
		fmt.Sprintf("%d", eData.Stats.SegEntries), eData.Stats.SegEntries == 0)
	return t, nil
}

// AblationKGCCElim compares instrumented execution cost with and
// without the elimination heuristics.
func AblationKGCCElim() (*Table, error) {
	t := &Table{ID: "A2", Title: "KGCC with vs without check elimination"}
	// Kernel-object updates: the repeated constant-index field
	// accesses are exactly what check CSE and the stack heuristic
	// eliminate, so the dynamic check count drops too.
	src := `
int field_update(int *obj) {
	obj[0] = obj[0] + 1;
	obj[1] = obj[1] + obj[0];
	obj[2] = obj[2] + obj[1];
	obj[0] = obj[0] ^ obj[2];
	obj[1] = obj[1] & obj[0];
	obj[2] = obj[2] | obj[1];
	return obj[0] + obj[1] + obj[2];
}
int driver(int n) {
	int obj[8];
	obj[0] = 1; obj[1] = 2; obj[2] = 3;
	int total = 0;
	for (int r = 0; r < n; r++) {
		total += field_update(obj);
	}
	return total;
}`
	runOpts := func(opts kgcc.Options) (sim.Cycles, int64, error) {
		unit, err := minic.CompileSource(src)
		if err != nil {
			return 0, 0, err
		}
		kgcc.InstrumentUnit(unit, opts)
		costs := sim.DefaultCosts()
		as := mem.NewAddressSpace("abl", mem.NewPhys(128<<20), &costs)
		ip, err := minic.NewInterp(as, unit)
		if err != nil {
			return 0, 0, err
		}
		var charged sim.Cycles
		ip.Charge = func(c sim.Cycles) { charged += c }
		m := kgcc.NewMap(&costs, func(c sim.Cycles) { charged += c })
		kgcc.Attach(ip, m)
		if _, err := ip.Call("driver", 40); err != nil {
			return 0, 0, err
		}
		return charged, m.Checks, nil
	}
	fullCost, fullChecks, err := runOpts(kgcc.FullChecks())
	if err != nil {
		return nil, err
	}
	elimCost, elimChecks, err := runOpts(kgcc.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t.Add("runtime checks executed (full)", "baseline", fmt.Sprintf("%d", fullChecks), fullChecks > 0)
	t.Add("runtime checks executed (eliminated)", "fewer than half",
		fmt.Sprintf("%d", elimChecks), elimChecks*2 < fullChecks)
	sp := improvement(fullCost, elimCost)
	t.Add("cycle cost recovered by elimination", "significant", pct(sp), sp > 0.1)
	return t, nil
}

// AblationKefencePlacement verifies the guard-placement tradeoff
// (§3.2): guard-after catches overflows but not underflows, and vice
// versa.
func AblationKefencePlacement() (*Table, error) {
	t := &Table{ID: "A3", Title: "Kefence guard placement: overflow vs underflow detection"}
	costs := sim.DefaultCosts()
	check := func(before bool) (overflowCaught, underflowCaught bool, err error) {
		as := mem.NewAddressSpace("abl", mem.NewPhys(64<<20), &costs)
		a := kefence.New(as, &costs, nil, nil)
		a.GuardBefore = before
		buf, err := a.Alloc(100)
		if err != nil {
			return false, false, err
		}
		overflowCaught = as.WriteBytes(buf+100, []byte{1}) != nil
		underflowCaught = as.WriteBytes(buf-1, []byte{1}) != nil
		return overflowCaught, underflowCaught, nil
	}
	ov, un, err := check(false)
	if err != nil {
		return nil, err
	}
	t.Add("guard after: overflow caught / underflow caught", "yes / no",
		fmt.Sprintf("%v / %v", ov, un), ov && !un)
	ov2, un2, err := check(true)
	if err != nil {
		return nil, err
	}
	t.Add("guard before: overflow caught / underflow caught", "no / yes",
		fmt.Sprintf("%v / %v", ov2, un2), !ov2 && un2)
	return t, nil
}

// AblationKmonBlocking measures the fix the paper proposes as future
// work: blocking reads collapse the logger overhead.
func AblationKmonBlocking() (*Table, error) {
	t := &Table{ID: "A4", Title: "event logger: polling vs blocking reads"}
	pct103, err := e6LoggerOverhead(false)
	if err != nil {
		return nil, err
	}
	pctBlocking, err := e6LoggerOverhead(true)
	if err != nil {
		return nil, err
	}
	t.Add("polling logger overhead", "61-103%", pct(pct103), pct103 > 0.3)
	t.Add("blocking logger overhead", "small (the proposed fix)", pct(pctBlocking),
		pctBlocking < pct103/3)
	return t, nil
}

// e6LoggerOverhead runs PostMark with a non-writing logger in the
// given mode and returns the elapsed overhead versus no logger.
func e6LoggerOverhead(blocking bool) (float64, error) {
	cfg := workload.DefaultPostMark()
	cfg.Transactions = 800
	base, _, err := RunPhase(core.Options{}, func(s *core.System) { s.InstrumentDcache(); s.Mon.RingEnabled = true },
		nil, func(pr *sys.Proc) error {
			_, err := workload.PostMark(pr, cfg)
			return err
		})
	if err != nil {
		return 0, err
	}
	s, err := core.New(core.Options{})
	if err != nil {
		return 0, err
	}
	s.InstrumentDcache()
	s.Mon.RingEnabled = true
	var done atomic.Bool
	var ph Phase
	s.Spawn("postmark", func(pr *sys.Proc) error {
		defer done.Store(true)
		t0 := s.M.Clock.Now()
		if _, err := workload.PostMark(pr, cfg); err != nil {
			return err
		}
		ph.Elapsed = s.M.Clock.Now() - t0
		return nil
	})
	lcfg := workload.DefaultLogger()
	lcfg.WriteLog = false
	lcfg.Blocking = blocking
	s.Spawn("logger", func(pr *sys.Proc) error {
		_, err := workload.Logger(pr, lcfg, done.Load)
		return err
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	return overhead(base.Elapsed, ph.Elapsed), nil
}

// AblationSplayLocality reproduces the §3.5 observation: the splay
// tree is nearly optimal under reference locality and degrades when
// interleaved accesses (multi-threaded use) destroy it.
func AblationSplayLocality() (*Table, error) {
	t := &Table{ID: "A5", Title: "splay-tree object map: locality vs interleaved access"}
	build := func() *splay.Tree[int] {
		tr := &splay.Tree[int]{}
		r := sim.NewRand(99)
		for i := 0; i < 8192; i++ {
			tr.Insert(r.Uint64()%(1<<24), i)
		}
		return tr
	}
	var keys []uint64
	probe := build()
	probe.Walk(func(k uint64, v int) bool { keys = append(keys, k); return true })

	local := build()
	local.Touches = 0
	for i := 0; i < 20000; i++ {
		local.Find(keys[(i/100)%len(keys)]) // 100 repeats per key
	}
	scattered := build()
	scattered.Touches = 0
	r := sim.NewRand(7)
	for i := 0; i < 20000; i++ {
		scattered.Find(keys[r.Intn(len(keys))])
	}
	degr := float64(scattered.Touches) / float64(local.Touches)
	t.Add("node touches: scattered / local", "locality wins",
		fmt.Sprintf("%.1fx more work without locality", degr), degr > 3)
	return t, nil
}
