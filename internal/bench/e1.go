package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sys"
	"repro/internal/workload"
)

// E1Sizes are the paper's directory sizes: "We increased the number
// of files by powers of 10 from 10 to 100,000."
var E1Sizes = []int{10, 100, 1000, 10000, 100000}

// E1 reproduces §2.2's readdirplus evaluation: "elapsed, system, and
// user times improved 60.6-63.8%, 55.7-59.3%, and 82.8-84.0%,
// respectively", consistently across directory sizes. perf enables
// kperf instrumentation on every booted system; the cycle results are
// bit-identical either way (the perfgate test asserts it).
func E1(full, perf bool) (*Table, error) {
	t := &Table{ID: "E1", Title: "readdirplus vs readdir+stat (improvement by directory size)"}
	sizes := E1Sizes
	if !full {
		sizes = sizes[:len(sizes)-1]
		t.Note("run with -full (or kucode e1 -full) to include the 100,000-file point")
	}

	var elMin, elMax, syMin, syMax, usMin, usMax float64
	// A cache large enough to keep the whole tree warm: the paper's
	// runs list freshly created directories, so the sweep itself is
	// CPU-bound.
	opts := core.Options{CacheBlocks: 1 << 19}
	for i, n := range sizes {
		cfg := workload.DefaultDirSweep(n)
		oldPh, oldSys, err := RunPhase(perfOpts(opts, perf), nil,
			func(pr *sys.Proc) error { return workload.DirSweepSetup(pr, cfg) },
			func(pr *sys.Proc) error {
				got, err := workload.ReaddirStat(pr, cfg)
				if err == nil && got != workload.ExpectedSweepBytes(cfg) {
					return fmt.Errorf("bench: wrong sweep total %d", got)
				}
				return err
			})
		if err != nil {
			return nil, err
		}
		newPh, newSys, err := RunPhase(perfOpts(opts, perf), nil,
			func(pr *sys.Proc) error { return workload.DirSweepSetup(pr, cfg) },
			func(pr *sys.Proc) error {
				got, err := workload.ReaddirPlusSweep(pr, cfg)
				if err == nil && got != workload.ExpectedSweepBytes(cfg) {
					return fmt.Errorf("bench: wrong sweep total %d", got)
				}
				return err
			})
		if err != nil {
			return nil, err
		}
		t.Observe(oldPh)
		t.Observe(newPh)
		t.ObservePerf(oldSys)
		t.ObservePerf(newSys)
		el := improvement(oldPh.Elapsed, newPh.Elapsed)
		sy := improvement(oldPh.Sys, newPh.Sys)
		us := improvement(oldPh.User, newPh.User)
		if i == 0 {
			elMin, elMax, syMin, syMax, usMin, usMax = el, el, sy, sy, us, us
		} else {
			elMin, elMax = minf(elMin, el), maxf(elMax, el)
			syMin, syMax = minf(syMin, sy), maxf(syMax, sy)
			usMin, usMax = minf(usMin, us), maxf(usMax, us)
		}
		t.Add(fmt.Sprintf("%d files: elapsed/sys/user", n),
			"~62% / ~57% / ~83%",
			fmt.Sprintf("%s / %s / %s", pct(el), pct(sy), pct(us)),
			inBand(el, 0.50, 0.78) && inBand(sy, 0.45, 0.72) && inBand(us, 0.75, 0.90))
	}
	t.Add("elapsed improvement range", "60.6-63.8%",
		fmt.Sprintf("%s-%s", pct(elMin), pct(elMax)), inBand(elMin, 0.50, 0.78) && inBand(elMax, 0.50, 0.78))
	t.Add("system improvement range", "55.7-59.3%",
		fmt.Sprintf("%s-%s", pct(syMin), pct(syMax)), inBand(syMin, 0.45, 0.72) && inBand(syMax, 0.45, 0.72))
	t.Add("user improvement range", "82.8-84.0%",
		fmt.Sprintf("%s-%s", pct(usMin), pct(usMax)), inBand(usMin, 0.75, 0.90) && inBand(usMax, 0.75, 0.90))
	t.Add("consistency across sizes (elapsed spread)", "fairly consistent",
		pct(elMax-elMin), elMax-elMin < 0.12)
	return t, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
