package bench

import "testing"

// Each experiment runs once and must land inside its acceptance band
// (the paper's reported result ± the tolerance DESIGN.md documents).
// Failures print the full paper-vs-measured table. The experiments
// run with kperf enabled here, so every table also proves the
// attribution identity: the snapshot's cycle total equals the booted
// machines' elapsed cycles.

func checkTable(t *testing.T, tbl *Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if !tbl.AllPass() {
		t.Errorf("%s has rows outside the acceptance band", tbl.ID)
	}
	if tbl.Perf != nil {
		if err := tbl.Perf.CheckTotal(tbl.PerfElapsed); err != nil {
			t.Errorf("%s attribution identity: %v", tbl.ID, err)
		}
		if tbl.Perf.TraceRecords == 0 {
			t.Errorf("%s: kperf enabled but no trace records captured", tbl.ID)
		}
	}
}

func TestE1(t *testing.T) {
	tbl, err := E1(false, true)
	checkTable(t, tbl, err)
}

func TestE2(t *testing.T) {
	tbl, err := E2(true)
	checkTable(t, tbl, err)
}

func TestE3(t *testing.T) {
	tbl, err := E3(true)
	checkTable(t, tbl, err)
}

func TestE4(t *testing.T) {
	tbl, err := E4(true)
	checkTable(t, tbl, err)
}

func TestE5(t *testing.T) {
	tbl, err := E5(true)
	checkTable(t, tbl, err)
}

func TestE6(t *testing.T) {
	tbl, err := E6(true)
	checkTable(t, tbl, err)
}

func TestE7(t *testing.T) {
	tbl, err := E7(true)
	checkTable(t, tbl, err)
}

func TestE8(t *testing.T) {
	tbl, err := E8()
	checkTable(t, tbl, err)
}

func TestE9(t *testing.T) {
	tbl, err := E9(true)
	checkTable(t, tbl, err)
	if tbl.Perf == nil || tbl.Perf.SubsystemCycles["probe"] <= 0 {
		t.Errorf("E9: no cycles attributed to the probe subsystem")
	}
}

func TestE11(t *testing.T) {
	tbl, err := E11(true)
	checkTable(t, tbl, err)
	if tbl.Ktrace == nil {
		t.Fatal("E11: instrumented run produced no trace summary")
	}
	if tbl.Ktrace.Requests == 0 {
		t.Error("E11: no traced requests")
	}
	if tbl.Ktrace.IdentityViolations != 0 {
		t.Errorf("E11: %d decomposition identity violations (first: %s)",
			tbl.Ktrace.IdentityViolations, tbl.Ktrace.FirstViolation)
	}
	if tbl.Ktrace.Open != 0 {
		t.Errorf("E11: %d requests left open", tbl.Ktrace.Open)
	}
}

func TestE12(t *testing.T) {
	tbl, err := E12(true)
	checkTable(t, tbl, err)
	if tbl.Ktrace == nil {
		t.Fatal("E12: instrumented run produced no trace summary")
	}
	if tbl.Ktrace.IdentityViolations != 0 {
		t.Errorf("E12: %d decomposition identity violations (first: %s)",
			tbl.Ktrace.IdentityViolations, tbl.Ktrace.FirstViolation)
	}
	if tbl.Ktrace.Open != 0 {
		t.Errorf("E12: %d requests left open", tbl.Ktrace.Open)
	}
}

func TestAblations(t *testing.T) {
	tables, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		t.Logf("\n%s", tbl)
		if !tbl.AllPass() {
			t.Errorf("%s has rows outside the acceptance band", tbl.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo"}
	tbl.Add("a", "1", "2", true)
	tbl.Add("b", "3", "4", false)
	tbl.Note("hello")
	if tbl.AllPass() {
		t.Fatal("AllPass with failing row")
	}
	s := tbl.String()
	md := tbl.Markdown()
	for _, want := range []string{"demo", "MISS", "hello"} {
		if !contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	for _, want := range []string{"###", "❌", "✅"} {
		if !contains(md, want) {
			t.Fatalf("Markdown missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
