package vfs

import (
	"sort"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/kperf"
	"repro/internal/sim"
)

// BlockKey identifies one cached disk block of one file system.
type BlockKey struct {
	Node  NodeID
	Block int64
}

// diskBlock maps a (node, block) pair to a linear disk address so the
// latency model sees file-internal sequentiality.
func diskBlock(k BlockKey) int64 {
	return int64(k.Node)<<20 | (k.Block & 0xFFFFF)
}

// IOModel is a write-back buffer cache in front of one disk. File
// systems call ReadBlock/WriteBlock for every data or metadata block
// they touch; hits cost nothing extra (the CPU cost is part of the
// operation), misses block the process for the disk latency, and
// evictions of dirty blocks write back.
type IOModel struct {
	Dev      *disk.Device
	Capacity int // blocks held in cache; 0 means unbounded

	// DirtyLimit, when positive, enables write throttling: a writer
	// dirtying more than this many blocks pauses briefly
	// (balance_dirty_pages) while the background flusher thread
	// writes the backlog out — the flusher's disk time is not charged
	// to the writer, but the short sleeps shape its scheduling
	// priority exactly as on Linux 2.6.
	DirtyLimit    int
	ThrottleDelay sim.Cycles

	table map[BlockKey]*cacheEntry
	head  *cacheEntry // most recent
	tail  *cacheEntry // least recent
	dirty int

	// Stats.
	Hits, Misses, Writebacks, SyncWrites int64
	Throttles, FlusherWrites             int64
}

type cacheEntry struct {
	key        BlockKey
	dirty      bool
	prev, next *cacheEntry
}

// NewIOModel creates a cache of capacity blocks over dev.
func NewIOModel(dev *disk.Device, capacity int) *IOModel {
	return &IOModel{Dev: dev, Capacity: capacity, table: make(map[BlockKey]*cacheEntry)}
}

func (io *IOModel) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		io.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		io.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (io *IOModel) pushFront(e *cacheEntry) {
	e.next = io.head
	if io.head != nil {
		io.head.prev = e
	}
	io.head = e
	if io.tail == nil {
		io.tail = e
	}
}

// touch marks e most-recently-used.
func (io *IOModel) touch(e *cacheEntry) {
	if io.head == e {
		return
	}
	io.unlink(e)
	io.pushFront(e)
}

// evictIfNeeded removes LRU entries beyond capacity, writing back
// dirty victims (blocking p for the write latency).
func (io *IOModel) evictIfNeeded(p *kernel.Process) {
	if io.Capacity <= 0 {
		return
	}
	for len(io.table) > io.Capacity {
		victim := io.tail
		if victim == nil {
			return
		}
		io.unlink(victim)
		delete(io.table, victim.key)
		if victim.dirty {
			io.dirty--
			io.Writebacks++
			p.BlockOn(kperf.SubDisk, io.Dev.AccessTime(diskBlock(victim.key), disk.BlockSize, true))
		}
	}
}

// ReadBlock brings a block into the cache, blocking on a miss.
func (io *IOModel) ReadBlock(p *kernel.Process, key BlockKey) {
	if e, ok := io.table[key]; ok {
		io.Hits++
		io.touch(e)
		return
	}
	io.Misses++
	p.BlockOn(kperf.SubDisk, io.Dev.AccessTime(diskBlock(key), disk.BlockSize, false))
	e := &cacheEntry{key: key}
	io.table[key] = e
	io.pushFront(e)
	io.evictIfNeeded(p)
}

// WriteBlock dirties a block in the cache (write-back). A miss on
// write allocates the block without reading (whole-block overwrite
// semantics, fine for the workloads simulated).
func (io *IOModel) WriteBlock(p *kernel.Process, key BlockKey) {
	if e, ok := io.table[key]; ok {
		io.Hits++
		if !e.dirty {
			e.dirty = true
			io.dirty++
		}
		io.touch(e)
		io.throttle(p)
		return
	}
	io.Misses++
	e := &cacheEntry{key: key, dirty: true}
	io.dirty++
	io.table[key] = e
	io.pushFront(e)
	io.evictIfNeeded(p)
	io.throttle(p)
}

// throttle pauses a writer over the dirty limit while the background
// flusher cleans the backlog (its disk time is asynchronous).
func (io *IOModel) throttle(p *kernel.Process) {
	if io.DirtyLimit <= 0 || io.dirty <= io.DirtyLimit {
		return
	}
	io.Throttles++
	delay := io.ThrottleDelay
	if delay == 0 {
		delay = 400_000
	}
	p.BlockFor(delay)
	// The flusher wrote the oldest dirty blocks while we slept.
	for e := io.tail; e != nil && io.dirty > io.DirtyLimit/2; e = e.prev {
		if e.dirty {
			e.dirty = false
			io.dirty--
			io.FlusherWrites++
			io.Dev.AccessTime(diskBlock(e.key), disk.BlockSize, true)
		}
	}
}

// WriteThrough writes a block synchronously to the disk (journal
// commits), leaving it clean in the cache.
func (io *IOModel) WriteThrough(p *kernel.Process, key BlockKey) {
	p.BlockOn(kperf.SubDisk, io.Dev.AccessTime(diskBlock(key), disk.BlockSize, true))
	if e, ok := io.table[key]; ok {
		if e.dirty {
			e.dirty = false
			io.dirty--
		}
		io.touch(e)
		return
	}
	e := &cacheEntry{key: key}
	io.table[key] = e
	io.pushFront(e)
	io.evictIfNeeded(p)
}

// Drop invalidates a block (file deletion) without writeback.
func (io *IOModel) Drop(key BlockKey) {
	if e, ok := io.table[key]; ok {
		if e.dirty {
			io.dirty--
		}
		io.unlink(e)
		delete(io.table, key)
	}
}

// Sync writes back every dirty block, in disk order (the elevator):
// sequential appends flush without seeking.
func (io *IOModel) Sync(p *kernel.Process) {
	var dirty []*cacheEntry
	for e := io.head; e != nil; e = e.next {
		if e.dirty {
			dirty = append(dirty, e)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		return diskBlock(dirty[i].key) < diskBlock(dirty[j].key)
	})
	for _, e := range dirty {
		e.dirty = false
		io.dirty--
		io.SyncWrites++
		p.BlockOn(kperf.SubDisk, io.Dev.AccessTime(diskBlock(e.key), disk.BlockSize, true))
	}
}

// Cached reports the number of resident blocks.
func (io *IOModel) Cached() int { return len(io.table) }
