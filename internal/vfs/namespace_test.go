package vfs

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
)

// fakeFS is a minimal in-memory FS for namespace tests (the real
// implementations live in subpackages, which vfs cannot import).
type fakeFS struct {
	name    string
	nodes   map[NodeID]map[string]NodeID // dir -> children
	lookups int
	next    NodeID
}

func newFakeFS(name string) *fakeFS {
	return &fakeFS{name: name, nodes: map[NodeID]map[string]NodeID{1: {}}, next: 2}
}

func (f *fakeFS) addDir(parent NodeID, name string) NodeID {
	id := f.next
	f.next++
	f.nodes[parent][name] = id
	f.nodes[id] = map[string]NodeID{}
	return id
}

func (f *fakeFS) FSName() string { return f.name }
func (f *fakeFS) Root() NodeID   { return 1 }
func (f *fakeFS) Lookup(p *kernel.Process, dir NodeID, name string) (NodeID, error) {
	f.lookups++
	children, ok := f.nodes[dir]
	if !ok {
		return 0, ErrNotExist
	}
	id, ok := children[name]
	if !ok {
		return 0, ErrNotExist
	}
	return id, nil
}
func (f *fakeFS) Getattr(p *kernel.Process, n NodeID) (Attr, error) {
	return Attr{ID: n, Type: TypeDir}, nil
}
func (f *fakeFS) Create(p *kernel.Process, dir NodeID, name string) (NodeID, error) {
	return f.addDir(dir, name), nil
}
func (f *fakeFS) Mkdir(p *kernel.Process, dir NodeID, name string) (NodeID, error) {
	return f.addDir(dir, name), nil
}
func (f *fakeFS) Unlink(p *kernel.Process, dir NodeID, name string) error {
	delete(f.nodes[dir], name)
	return nil
}
func (f *fakeFS) Rmdir(p *kernel.Process, dir NodeID, name string) error {
	delete(f.nodes[dir], name)
	return nil
}
func (f *fakeFS) Readdir(p *kernel.Process, dir NodeID) ([]DirEnt, error) { return nil, nil }
func (f *fakeFS) Read(p *kernel.Process, n NodeID, off int64, buf []byte) (int, error) {
	return 0, nil
}
func (f *fakeFS) Write(p *kernel.Process, n NodeID, off int64, data []byte) (int, error) {
	return len(data), nil
}
func (f *fakeFS) Truncate(p *kernel.Process, n NodeID, size int64) error { return nil }
func (f *fakeFS) Rename(p *kernel.Process, od NodeID, on string, nd NodeID, nn string) error {
	return nil
}
func (f *fakeFS) Sync(p *kernel.Process) error { return nil }

var _ FS = (*fakeFS)(nil)
var _ = disk.BlockSize // keep import symmetry with vfs_test

func TestResolveWalksComponents(t *testing.T) {
	root := newFakeFS("root")
	a := root.addDir(1, "a")
	b := root.addDir(a, "b")
	ns := NewNamespace(root)
	run(t, func(p *kernel.Process) error {
		fs, id, err := ns.Resolve(p, "/a/b")
		if err != nil {
			return err
		}
		if fs != FS(root) || id != b {
			t.Errorf("resolved to %v/%d, want %d", fs, id, b)
		}
		return nil
	})
}

func TestResolveMissing(t *testing.T) {
	ns := NewNamespace(newFakeFS("root"))
	run(t, func(p *kernel.Process) error {
		_, _, err := ns.Resolve(p, "/nope")
		if !errors.Is(err, ErrNotExist) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestResolveParent(t *testing.T) {
	root := newFakeFS("root")
	a := root.addDir(1, "a")
	ns := NewNamespace(root)
	run(t, func(p *kernel.Process) error {
		_, parent, name, err := ns.ResolveParent(p, "/a/newfile")
		if err != nil {
			return err
		}
		if parent != a || name != "newfile" {
			t.Errorf("parent=%d name=%q", parent, name)
		}
		if _, _, _, err := ns.ResolveParent(p, "/"); err == nil {
			t.Error("parent of / should fail")
		}
		return nil
	})
}

func TestMountLongestPrefixWins(t *testing.T) {
	root := newFakeFS("root")
	root.addDir(1, "mnt")
	sub := newFakeFS("sub")
	deeper := newFakeFS("deeper")
	subX := sub.addDir(1, "x")
	_ = subX
	ns := NewNamespace(root)
	if err := ns.Mount("/mnt", sub); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount("/mnt/deep", deeper); err != nil {
		t.Fatal(err)
	}
	run(t, func(p *kernel.Process) error {
		fs, _, err := ns.Resolve(p, "/mnt/x")
		if err != nil {
			return err
		}
		if fs.FSName() != "sub" {
			t.Errorf("resolved in %s", fs.FSName())
		}
		fs, _, err = ns.Resolve(p, "/mnt/deep")
		if err != nil {
			return err
		}
		if fs.FSName() != "deeper" {
			t.Errorf("deep mount resolved in %s", fs.FSName())
		}
		return nil
	})
}

func TestDoubleMountFails(t *testing.T) {
	ns := NewNamespace(newFakeFS("root"))
	if err := ns.Mount("/mnt", newFakeFS("a")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount("/mnt", newFakeFS("b")); err == nil {
		t.Fatal("double mount succeeded")
	}
}

func TestDcacheAvoidsRepeatLookups(t *testing.T) {
	root := newFakeFS("root")
	root.addDir(1, "dir")
	ns := NewNamespace(root)
	run(t, func(p *kernel.Process) error {
		for i := 0; i < 10; i++ {
			if _, _, err := ns.Resolve(p, "/dir"); err != nil {
				return err
			}
		}
		return nil
	})
	if root.lookups != 1 {
		t.Fatalf("FS lookups = %d, want 1 (dcache should absorb the rest)", root.lookups)
	}
	if ns.Dc.Hits != 9 || ns.Dc.Misses != 1 {
		t.Fatalf("dcache hits=%d misses=%d", ns.Dc.Hits, ns.Dc.Misses)
	}
}

func TestDcacheLockAcquiredPerLookup(t *testing.T) {
	root := newFakeFS("root")
	root.addDir(1, "dir")
	ns := NewNamespace(root)
	run(t, func(p *kernel.Process) error {
		for i := 0; i < 5; i++ {
			_, _, _ = ns.Resolve(p, "/dir")
		}
		return nil
	})
	// Each hit takes the lock once; the initial miss takes it twice
	// (probe + insert).
	if ns.Dc.Lock.Acquisitions < 5 {
		t.Fatalf("dcache_lock acquisitions = %d", ns.Dc.Lock.Acquisitions)
	}
}

func TestInvalidateForcesRelookup(t *testing.T) {
	root := newFakeFS("root")
	root.addDir(1, "dir")
	ns := NewNamespace(root)
	run(t, func(p *kernel.Process) error {
		_, _, _ = ns.Resolve(p, "/dir")
		ns.Invalidate(p, "/dir")
		_, _, _ = ns.Resolve(p, "/dir")
		return nil
	})
	if root.lookups != 2 {
		t.Fatalf("FS lookups = %d, want 2 after invalidate", root.lookups)
	}
}

func TestDeviceRegistry(t *testing.T) {
	ns := NewNamespace(newFakeFS("root"))
	ns.RegisterDevice("/dev/kernevents", nil)
	if _, ok := ns.LookupDevice("/dev/kernevents"); !ok {
		t.Fatal("device not found")
	}
	if _, ok := ns.LookupDevice("/dev/null"); ok {
		t.Fatal("phantom device")
	}
}
