// Package memfs is the simulated machine's baseline disk file system,
// standing in for the paper's Ext2/Ext3. Metadata lives in memory
// (the inode and dentry structures a real FS would also cache), while
// data and metadata block accesses go through the shared vfs.IOModel
// buffer cache so cold reads, write-back, and sync behave like a real
// disk file system.
package memfs

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// FS implements vfs.FS.
type FS struct {
	name  string
	io    *vfs.IOModel
	nodes map[vfs.NodeID]*mnode
	next  vfs.NodeID

	// OpCPU is the per-operation CPU cost (kernel mode); CopyByte the
	// per-byte page-cache copy cost.
	OpCPU    sim.Cycles
	CopyByte sim.Cycles
}

type mnode struct {
	attr     vfs.Attr
	data     []byte
	children map[string]vfs.NodeID
}

// New creates an empty file system over io.
func New(name string, io *vfs.IOModel) *FS {
	fs := &FS{
		name:     name,
		io:       io,
		nodes:    make(map[vfs.NodeID]*mnode),
		next:     2,
		OpCPU:    vfs.OpCPU,
		CopyByte: 1,
	}
	fs.nodes[1] = &mnode{
		attr:     vfs.Attr{ID: 1, Type: vfs.TypeDir, Nlink: 2, Mode: 0755},
		children: make(map[string]vfs.NodeID),
	}
	return fs
}

// FSName implements vfs.FS.
func (fs *FS) FSName() string { return fs.name }

// Root implements vfs.FS.
func (fs *FS) Root() vfs.NodeID { return 1 }

// IO exposes the buffer cache for stats.
func (fs *FS) IO() *vfs.IOModel { return fs.io }

func (fs *FS) charge(p *kernel.Process, c sim.Cycles) {
	p.Charge(c)
}

func (fs *FS) dir(p *kernel.Process, id vfs.NodeID) (*mnode, error) {
	n, ok := fs.nodes[id]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	if n.attr.Type != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	// Directory blocks are metadata reads.
	fs.io.ReadBlock(p, vfs.BlockKey{Node: id, Block: 0})
	return n, nil
}

// Lookup implements vfs.FS.
func (fs *FS) Lookup(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	fs.charge(p, fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return 0, err
	}
	id, ok := d.children[name]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return id, nil
}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(p *kernel.Process, id vfs.NodeID) (vfs.Attr, error) {
	fs.charge(p, fs.OpCPU)
	n, ok := fs.nodes[id]
	if !ok {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	// Inode block read.
	fs.io.ReadBlock(p, vfs.BlockKey{Node: id, Block: -1})
	return n.attr, nil
}

// Create implements vfs.FS.
func (fs *FS) Create(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	fs.charge(p, 2*fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return 0, err
	}
	if _, ok := d.children[name]; ok {
		return 0, vfs.ErrExist
	}
	id := fs.next
	fs.next++
	fs.nodes[id] = &mnode{attr: vfs.Attr{ID: id, Type: vfs.TypeReg, Nlink: 1, Mode: 0644, Mtime: p.M.Clock.Now()}}
	d.children[name] = id
	// The directory block receiving the new entry and the new inode
	// block are dirtied.
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: dirEntryBlock(len(d.children))})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: -1})
	return id, nil
}

// dirEntryBlock maps the n-th directory entry to its data block,
// assuming the on-disk dirent slot size.
const direntSlot = 40

func dirEntryBlock(n int) int64 {
	return int64(n * direntSlot / mem.PageSize)
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	fs.charge(p, 2*fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return 0, err
	}
	if _, ok := d.children[name]; ok {
		return 0, vfs.ErrExist
	}
	id := fs.next
	fs.next++
	fs.nodes[id] = &mnode{
		attr:     vfs.Attr{ID: id, Type: vfs.TypeDir, Nlink: 2, Mode: 0755, Mtime: p.M.Clock.Now()},
		children: make(map[string]vfs.NodeID),
	}
	d.children[name] = id
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: dirEntryBlock(len(d.children))})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: 0})
	return id, nil
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(p *kernel.Process, dir vfs.NodeID, name string) error {
	fs.charge(p, 2*fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return err
	}
	id, ok := d.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := fs.nodes[id]
	if n.attr.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	delete(d.children, name)
	n.attr.Nlink--
	if n.attr.Nlink == 0 {
		fs.dropBlocks(id, n)
		delete(fs.nodes, id)
	}
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	return nil
}

func (fs *FS) dropBlocks(id vfs.NodeID, n *mnode) {
	blocks := int64(len(n.data)+mem.PageSize-1) / mem.PageSize
	for b := int64(0); b <= blocks; b++ {
		fs.io.Drop(vfs.BlockKey{Node: id, Block: b})
	}
	fs.io.Drop(vfs.BlockKey{Node: id, Block: -1})
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(p *kernel.Process, dir vfs.NodeID, name string) error {
	fs.charge(p, 2*fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return err
	}
	id, ok := d.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := fs.nodes[id]
	if n.attr.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.children) != 0 {
		return vfs.ErrNotEmpty
	}
	delete(d.children, name)
	delete(fs.nodes, id)
	fs.io.Drop(vfs.BlockKey{Node: id, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	return nil
}

// Readdir implements vfs.FS.
func (fs *FS) Readdir(p *kernel.Process, dir vfs.NodeID) ([]vfs.DirEnt, error) {
	fs.charge(p, fs.OpCPU)
	d, err := fs.dir(p, dir)
	if err != nil {
		return nil, err
	}
	ents := make([]vfs.DirEnt, 0, len(d.children))
	for name, id := range d.children {
		ents = append(ents, vfs.DirEnt{Name: name, ID: id, Type: fs.nodes[id].attr.Type})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	// Scanning entries costs CPU proportional to the directory size,
	// and large directories span multiple blocks (the same blocks
	// entry insertion dirtied).
	fs.charge(p, sim.Cycles(len(ents))*20)
	for b := int64(1); b <= dirEntryBlock(len(ents)); b++ {
		fs.io.ReadBlock(p, vfs.BlockKey{Node: dir, Block: b})
	}
	return ents, nil
}

// Read implements vfs.FS.
func (fs *FS) Read(p *kernel.Process, id vfs.NodeID, off int64, buf []byte) (int, error) {
	fs.charge(p, fs.OpCPU)
	n, ok := fs.nodes[id]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	count := copy(buf, n.data[off:])
	for b := off / mem.PageSize; b <= (off+int64(count)-1)/mem.PageSize; b++ {
		fs.io.ReadBlock(p, vfs.BlockKey{Node: id, Block: b})
	}
	fs.charge(p, sim.Cycles(count)*fs.CopyByte)
	return count, nil
}

// Write implements vfs.FS.
func (fs *FS) Write(p *kernel.Process, id vfs.NodeID, off int64, data []byte) (int, error) {
	fs.charge(p, fs.OpCPU)
	n, ok := fs.nodes[id]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
		n.attr.Size = end
	}
	copy(n.data[off:], data)
	n.attr.Mtime = p.M.Clock.Now()
	for b := off / mem.PageSize; b <= (end-1)/mem.PageSize && len(data) > 0; b++ {
		fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: b})
	}
	fs.charge(p, sim.Cycles(len(data))*fs.CopyByte)
	return len(data), nil
}

// Truncate implements vfs.FS.
func (fs *FS) Truncate(p *kernel.Process, id vfs.NodeID, size int64) error {
	fs.charge(p, fs.OpCPU)
	n, ok := fs.nodes[id]
	if !ok {
		return vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size < 0 {
		return vfs.ErrInval
	}
	switch {
	case size < int64(len(n.data)):
		n.data = n.data[:size]
	case size > int64(len(n.data)):
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.attr.Size = size
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: -1})
	return nil
}

// Rename implements vfs.FS.
func (fs *FS) Rename(p *kernel.Process, odir vfs.NodeID, oname string, ndir vfs.NodeID, nname string) error {
	fs.charge(p, 3*fs.OpCPU)
	od, err := fs.dir(p, odir)
	if err != nil {
		return err
	}
	nd, err := fs.dir(p, ndir)
	if err != nil {
		return err
	}
	id, ok := od.children[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	if existing, ok := nd.children[nname]; ok {
		if fs.nodes[existing].attr.Type == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		_ = fs.Unlink(p, ndir, nname)
	}
	delete(od.children, oname)
	nd.children[nname] = id
	fs.io.WriteBlock(p, vfs.BlockKey{Node: odir, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: ndir, Block: 0})
	return nil
}

// Sync implements vfs.FS.
func (fs *FS) Sync(p *kernel.Process) error {
	fs.charge(p, fs.OpCPU)
	fs.io.Sync(p)
	return nil
}

// NodeCount reports the number of live inodes (root included).
func (fs *FS) NodeCount() int { return len(fs.nodes) }

var _ vfs.FS = (*FS)(nil)
