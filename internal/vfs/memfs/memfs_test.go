package memfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/vfs"
)

func newFS() *FS {
	return New("memfs", vfs.NewIOModel(disk.New(disk.IDE7200()), 4096))
}

func run(t *testing.T, fn func(p *kernel.Process) error) *kernel.Machine {
	t.Helper()
	m := kernel.New(kernel.Config{})
	m.Spawn("test", fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateWriteRead(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, err := fs.Create(p, fs.Root(), "f")
		if err != nil {
			return err
		}
		msg := []byte("the quick brown fox")
		if n, err := fs.Write(p, id, 0, msg); err != nil || n != len(msg) {
			t.Errorf("write = %d,%v", n, err)
		}
		buf := make([]byte, 100)
		n, err := fs.Read(p, id, 0, buf)
		if err != nil || !bytes.Equal(buf[:n], msg) {
			t.Errorf("read = %q,%v", buf[:n], err)
		}
		return nil
	})
}

func TestLookupErrors(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		if _, err := fs.Lookup(p, fs.Root(), "ghost"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Lookup(p, id, "x"); !errors.Is(err, vfs.ErrNotDir) {
			t.Errorf("lookup in file = %v", err)
		}
		if _, err := fs.Lookup(p, 9999, "x"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("lookup in missing dir = %v", err)
		}
		return nil
	})
}

func TestNestedDirectories(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		a, err := fs.Mkdir(p, fs.Root(), "a")
		if err != nil {
			return err
		}
		b, err := fs.Mkdir(p, a, "b")
		if err != nil {
			return err
		}
		f, err := fs.Create(p, b, "deep")
		if err != nil {
			return err
		}
		got, err := fs.Lookup(p, b, "deep")
		if err != nil || got != f {
			t.Errorf("deep lookup = %d,%v", got, err)
		}
		return nil
	})
}

func TestUnlinkFreesNode(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Write(p, id, 0, make([]byte, 10000)); err != nil {
			return err
		}
		before := fs.NodeCount()
		if err := fs.Unlink(p, fs.Root(), "f"); err != nil {
			return err
		}
		if fs.NodeCount() != before-1 {
			t.Errorf("node count %d -> %d", before, fs.NodeCount())
		}
		if _, err := fs.Getattr(p, id); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("getattr after unlink = %v", err)
		}
		return nil
	})
}

func TestReaddirDeterministic(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		for _, n := range []string{"zeta", "alpha", "mid"} {
			if _, err := fs.Create(p, fs.Root(), n); err != nil {
				return err
			}
		}
		ents, err := fs.Readdir(p, fs.Root())
		if err != nil {
			return err
		}
		if len(ents) != 3 || ents[0].Name != "alpha" || ents[2].Name != "zeta" {
			t.Errorf("ents = %v", ents)
		}
		return nil
	})
}

func TestColdReadBlocksWarmDoesNot(t *testing.T) {
	fs := newFS()
	var coldWait, warmWait int64
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Write(p, id, 0, make([]byte, 64<<10)); err != nil {
			return err
		}
		// Evict by dropping the cache: emulate cold cache with a new
		// IOModel... instead, use a second file read twice.
		_, _, w0 := p.Times()
		buf := make([]byte, 64<<10)
		// First read: blocks written are still cached (write-back), so
		// force a cold read via a fresh FS sharing no cache.
		_ = buf
		_ = w0
		return nil
	})
	// Direct approach: cold read on a fresh fs vs warm re-read.
	fs2 := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs2.Create(p, fs2.Root(), "f")
		if _, err := fs2.Write(p, id, 0, make([]byte, 64<<10)); err != nil {
			return err
		}
		fs2.IO().Sync(p)
		// Drop cache to simulate reboot.
		for b := int64(0); b < 20; b++ {
			fs2.IO().Drop(vfs.BlockKey{Node: id, Block: b})
		}
		buf := make([]byte, 64<<10)
		_, _, w1 := p.Times()
		if _, err := fs2.Read(p, id, 0, buf); err != nil {
			return err
		}
		_, _, w2 := p.Times()
		coldWait = int64(w2 - w1)
		if _, err := fs2.Read(p, id, 0, buf); err != nil {
			return err
		}
		_, _, w3 := p.Times()
		warmWait = int64(w3 - w2)
		return nil
	})
	if coldWait == 0 {
		t.Fatal("cold read did not hit the disk")
	}
	if warmWait != 0 {
		t.Fatalf("warm read waited %d cycles", warmWait)
	}
}

func TestRenameAcrossDirs(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		a, _ := fs.Mkdir(p, fs.Root(), "a")
		b, _ := fs.Mkdir(p, fs.Root(), "b")
		id, _ := fs.Create(p, a, "f")
		if err := fs.Rename(p, a, "f", b, "g"); err != nil {
			return err
		}
		got, err := fs.Lookup(p, b, "g")
		if err != nil || got != id {
			t.Errorf("lookup moved = %d,%v", got, err)
		}
		if _, err := fs.Lookup(p, a, "f"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("source still present")
		}
		return nil
	})
}

func TestWriteAtOffsetGrows(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Write(p, id, 5, []byte("xy")); err != nil {
			return err
		}
		a, _ := fs.Getattr(p, id)
		if a.Size != 7 {
			t.Errorf("size = %d", a.Size)
		}
		if _, err := fs.Write(p, id, -1, []byte("x")); !errors.Is(err, vfs.ErrInval) {
			t.Errorf("negative offset = %v", err)
		}
		return nil
	})
}

func TestManyFilesStress(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		for i := 0; i < 1000; i++ {
			id, err := fs.Create(p, fs.Root(), fmt.Sprintf("f%04d", i))
			if err != nil {
				return err
			}
			if _, err := fs.Write(p, id, 0, []byte{byte(i)}); err != nil {
				return err
			}
		}
		ents, err := fs.Readdir(p, fs.Root())
		if err != nil {
			return err
		}
		if len(ents) != 1000 {
			t.Errorf("readdir = %d", len(ents))
		}
		return nil
	})
}
