package vfs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
)

// Namespace is the mount table plus path resolution. A root file
// system is mounted at "/"; additional file systems can be mounted on
// existing directories, and character devices appear under their
// registered paths.
type Namespace struct {
	Dc     *Dcache
	mounts []mountPoint // sorted by descending prefix length
	devs   map[string]Device
}

type mountPoint struct {
	prefix string // "/" or "/mnt/x"
	fs     FS
}

// NewNamespace creates a namespace rooted at rootFS.
func NewNamespace(rootFS FS) *Namespace {
	ns := &Namespace{Dc: NewDcache(), devs: make(map[string]Device)}
	ns.mounts = []mountPoint{{prefix: "/", fs: rootFS}}
	return ns
}

// Mount attaches fs at path (the path itself need not exist in the
// parent; mount points shadow, as in Linux).
func (ns *Namespace) Mount(path string, fs FS) error {
	path = Clean(path)
	for _, m := range ns.mounts {
		if m.prefix == path {
			return fmt.Errorf("vfs: %s already mounted", path)
		}
	}
	ns.mounts = append(ns.mounts, mountPoint{prefix: path, fs: fs})
	sort.Slice(ns.mounts, func(i, j int) bool {
		return len(ns.mounts[i].prefix) > len(ns.mounts[j].prefix)
	})
	return nil
}

// RegisterDevice exposes dev at path (e.g. "/dev/kernevents").
func (ns *Namespace) RegisterDevice(path string, dev Device) {
	ns.devs[Clean(path)] = dev
}

// LookupDevice returns the device registered at path.
func (ns *Namespace) LookupDevice(path string) (Device, bool) {
	d, ok := ns.devs[Clean(path)]
	return d, ok
}

// Clean normalizes a path: leading slash, no trailing slash, no empty
// or "." components.
func Clean(path string) string {
	parts := Split(path)
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// Split breaks a path into components, dropping empty and "."
// segments and resolving ".." lexically.
func Split(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, c)
		}
	}
	return out
}

// mountFor returns the longest-prefix mount covering path and the
// path remainder relative to it.
func (ns *Namespace) mountFor(path string) (FS, []string) {
	path = Clean(path)
	for _, m := range ns.mounts {
		if m.prefix == "/" {
			return m.fs, Split(path)
		}
		if path == m.prefix {
			return m.fs, nil
		}
		if strings.HasPrefix(path, m.prefix+"/") {
			return m.fs, Split(path[len(m.prefix):])
		}
	}
	// The "/" mount always matches; unreachable.
	panic("vfs: no root mount")
}

// Resolve walks path to its inode.
func (ns *Namespace) Resolve(p *kernel.Process, path string) (FS, NodeID, error) {
	fs, parts := ns.mountFor(path)
	cur := fs.Root()
	for _, name := range parts {
		id, err := ns.Dc.lookup(p, fs, cur, name)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s", err, path)
		}
		cur = id
	}
	return fs, cur, nil
}

// ResolveParent walks to the parent directory of path and returns it
// along with the final component.
func (ns *Namespace) ResolveParent(p *kernel.Process, path string) (FS, NodeID, string, error) {
	fs, parts := ns.mountFor(path)
	if len(parts) == 0 {
		return nil, 0, "", fmt.Errorf("%w: cannot take parent of mount root %s", ErrInval, path)
	}
	cur := fs.Root()
	for _, name := range parts[:len(parts)-1] {
		id, err := ns.Dc.lookup(p, fs, cur, name)
		if err != nil {
			return nil, 0, "", fmt.Errorf("%w: %s", err, path)
		}
		cur = id
	}
	return fs, cur, parts[len(parts)-1], nil
}

// Invalidate drops the dentry for path's final component (after
// unlink/rmdir/rename).
func (ns *Namespace) Invalidate(p *kernel.Process, path string) {
	fs, parent, name, err := ns.ResolveParent(p, path)
	if err != nil {
		return
	}
	ns.Dc.Invalidate(p, fs, parent, name)
}
