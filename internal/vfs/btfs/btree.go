package btfs

// btree is a classic B-tree of strings -> uint64, standing in for
// Reiserfs's balanced-tree directory index. It counts the "memory
// operations" (key comparisons and record moves) each operation
// performs; the KGCC experiment charges a bounds check per counted
// operation, since every one of them is a pointer dereference the
// bounds-checking compiler would guard.
type btree struct {
	root *btnode
	size int
	// ops accumulates memory operations since the last TakeOps.
	ops int64
}

// minDegree is the B-tree minimum degree t: nodes hold t-1..2t-1
// keys.
const minDegree = 8

type btnode struct {
	keys     []string
	vals     []uint64
	children []*btnode // nil for leaves
}

func (n *btnode) leaf() bool { return n.children == nil }

// findIdx locates the first index with keys[i] >= k, counting
// comparisons.
func (t *btree) findIdx(n *btnode, k string) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		t.ops++
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *btree) Get(k string) (uint64, bool) {
	n := t.root
	for n != nil {
		i := t.findIdx(n, k)
		if i < len(n.keys) && n.keys[i] == k {
			t.ops++
			return n.vals[i], true
		}
		if n.leaf() {
			return 0, false
		}
		t.ops++
		n = n.children[i]
	}
	return 0, false
}

// Put inserts or replaces k.
func (t *btree) Put(k string, v uint64) {
	if t.root == nil {
		t.root = &btnode{keys: []string{k}, vals: []uint64{v}}
		t.size = 1
		t.ops += 2
		return
	}
	if len(t.root.keys) == 2*minDegree-1 {
		old := t.root
		t.root = &btnode{children: []*btnode{old}}
		t.splitChild(t.root, 0)
	}
	if t.insertNonFull(t.root, k, v) {
		t.size++
	}
}

func (t *btree) splitChild(parent *btnode, i int) {
	child := parent.children[i]
	mid := minDegree - 1
	right := &btnode{
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([]uint64(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btnode(nil), child.children[mid+1:]...)
	}
	t.ops += int64(len(right.keys)) + 2
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}
	parent.keys = append(parent.keys, "")
	parent.vals = append(parent.vals, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	copy(parent.vals[i+1:], parent.vals[i:])
	parent.keys[i] = upKey
	parent.vals[i] = upVal
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	t.ops += int64(len(parent.keys) - i)
}

// insertNonFull reports whether a new key was added (false: replaced).
func (t *btree) insertNonFull(n *btnode, k string, v uint64) bool {
	for {
		i := t.findIdx(n, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			t.ops++
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, "")
			n.vals = append(n.vals, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = k
			n.vals[i] = v
			t.ops += int64(len(n.keys) - i)
			return true
		}
		if len(n.children[i].keys) == 2*minDegree-1 {
			t.splitChild(n, i)
			if k == n.keys[i] {
				n.vals[i] = v
				return false
			}
			if k > n.keys[i] {
				i++
			}
		}
		t.ops++
		n = n.children[i]
	}
}

// Delete removes k, reporting whether it was present. It uses the
// standard recursive B-tree deletion with preemptive merging.
func (t *btree) Delete(k string) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, k)
	if len(t.root.keys) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *btree) delete(n *btnode, k string) bool {
	i := t.findIdx(n, k)
	if i < len(n.keys) && n.keys[i] == k {
		if n.leaf() {
			t.removeAt(n, i)
			return true
		}
		return t.deleteInternal(n, i)
	}
	if n.leaf() {
		return false
	}
	child := n.children[i]
	if len(child.keys) == minDegree-1 {
		i = t.fill(n, i)
		return t.delete(n, k) // structure changed; re-descend from n
	}
	t.ops++
	return t.delete(child, k)
}

func (t *btree) removeAt(n *btnode, i int) {
	copy(n.keys[i:], n.keys[i+1:])
	copy(n.vals[i:], n.vals[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	n.vals = n.vals[:len(n.vals)-1]
	t.ops += int64(len(n.keys) - i + 1)
}

func (t *btree) deleteInternal(n *btnode, i int) bool {
	k := n.keys[i]
	switch {
	case len(n.children[i].keys) >= minDegree:
		pk, pv := t.maxOf(n.children[i])
		n.keys[i], n.vals[i] = pk, pv
		return t.delete(n.children[i], pk)
	case len(n.children[i+1].keys) >= minDegree:
		sk, sv := t.minOf(n.children[i+1])
		n.keys[i], n.vals[i] = sk, sv
		return t.delete(n.children[i+1], sk)
	default:
		t.merge(n, i)
		return t.delete(n.children[i], k)
	}
}

func (t *btree) maxOf(n *btnode) (string, uint64) {
	for !n.leaf() {
		t.ops++
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

func (t *btree) minOf(n *btnode) (string, uint64) {
	for !n.leaf() {
		t.ops++
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

// fill ensures child i of n has at least minDegree keys, borrowing or
// merging; it returns the (possibly shifted) child index to descend.
func (t *btree) fill(n *btnode, i int) int {
	switch {
	case i > 0 && len(n.children[i-1].keys) >= minDegree:
		t.borrowLeft(n, i)
		return i
	case i < len(n.children)-1 && len(n.children[i+1].keys) >= minDegree:
		t.borrowRight(n, i)
		return i
	case i < len(n.children)-1:
		t.merge(n, i)
		return i
	default:
		t.merge(n, i-1)
		return i - 1
	}
}

func (t *btree) borrowLeft(n *btnode, i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append([]string{n.keys[i-1]}, child.keys...)
	child.vals = append([]uint64{n.vals[i-1]}, child.vals...)
	if !child.leaf() {
		child.children = append([]*btnode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.vals[i-1] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
	t.ops += int64(len(child.keys)) + 2
}

func (t *btree) borrowRight(n *btnode, i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = right.keys[1:]
	right.vals = right.vals[1:]
	t.ops += int64(len(right.keys)) + 2
}

// merge folds child i+1 and separator i into child i.
func (t *btree) merge(n *btnode, i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	child.keys = append(child.keys, right.keys...)
	child.vals = append(child.vals, right.vals...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	t.removeAt(n, i)
	copy(n.children[i+1:], n.children[i+2:])
	n.children = n.children[:len(n.children)-1]
	t.ops += int64(len(right.keys)) + 2
}

// Ascend visits entries with keys in [from, to) in order.
func (t *btree) Ascend(from, to string, fn func(k string, v uint64) bool) {
	var rec func(n *btnode) bool
	rec = func(n *btnode) bool {
		if n == nil {
			return true
		}
		i := t.findIdx(n, from)
		for ; i <= len(n.keys); i++ {
			if !n.leaf() {
				if !rec(n.children[i]) {
					return false
				}
			}
			if i == len(n.keys) {
				break
			}
			if n.keys[i] >= to {
				return false
			}
			if n.keys[i] >= from {
				t.ops++
				if !fn(n.keys[i], n.vals[i]) {
					return false
				}
			}
		}
		return true
	}
	rec(t.root)
}

// Len reports the number of keys.
func (t *btree) Len() int { return t.size }

// TakeOps returns and resets the memory-operation counter.
func (t *btree) TakeOps() int64 {
	ops := t.ops
	t.ops = 0
	return ops
}

// depth reports tree height (for tests).
func (t *btree) depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}

// check validates B-tree invariants (test helper): key ordering,
// node occupancy, and uniform leaf depth. It returns false with a
// reason when violated.
func (t *btree) check() (bool, string) {
	if t.root == nil {
		return true, ""
	}
	leafDepth := -1
	var rec func(n *btnode, depth int, lo, hi string, isRoot bool) (bool, string)
	rec = func(n *btnode, depth int, lo, hi string, isRoot bool) (bool, string) {
		if !isRoot && len(n.keys) < minDegree-1 {
			return false, "underfull node"
		}
		if len(n.keys) > 2*minDegree-1 {
			return false, "overfull node"
		}
		for i := 0; i < len(n.keys); i++ {
			if i > 0 && n.keys[i-1] >= n.keys[i] {
				return false, "unsorted keys"
			}
			if lo != "" && n.keys[i] <= lo {
				return false, "key below subtree bound"
			}
			if hi != "" && n.keys[i] >= hi {
				return false, "key above subtree bound"
			}
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return false, "uneven leaf depth"
			}
			return true, ""
		}
		if len(n.children) != len(n.keys)+1 {
			return false, "child count mismatch"
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if ok, why := rec(c, depth+1, clo, chi, false); !ok {
				return false, why
			}
		}
		return true, ""
	}
	return rec(t.root, 0, "", "", true)
}
