package btfs

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBtreePutGet(t *testing.T) {
	var tr btree
	tr.Put("b", 2)
	tr.Put("a", 1)
	tr.Put("c", 3)
	for k, want := range map[string]uint64{"a": 1, "b": 2, "c": 3} {
		if v, ok := tr.Get(k); !ok || v != want {
			t.Fatalf("Get(%q) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get("z"); ok {
		t.Fatal("found missing key")
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestBtreePutReplaces(t *testing.T) {
	var tr btree
	tr.Put("k", 1)
	tr.Put("k", 2)
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	if v, _ := tr.Get("k"); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestBtreeManyKeysInvariants(t *testing.T) {
	var tr btree
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("key-%06d", i*7919%n), uint64(i))
		if i%100 == 0 {
			if ok, why := tr.check(); !ok {
				t.Fatalf("invariant broken after %d inserts: %s", i+1, why)
			}
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	if d := tr.depth(); d < 2 || d > 6 {
		t.Fatalf("suspicious depth %d for %d keys", d, n)
	}
}

func TestBtreeDelete(t *testing.T) {
	var tr btree
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("k%05d", i), uint64(i))
	}
	// Delete odd keys.
	for i := 1; i < n; i += 2 {
		if !tr.Delete(fmt.Sprintf("k%05d", i)) {
			t.Fatalf("delete k%05d failed", i)
		}
		if i%99 == 0 {
			if ok, why := tr.check(); !ok {
				t.Fatalf("invariant broken during deletes: %s", why)
			}
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(fmt.Sprintf("k%05d", i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(k%05d) = %v, want %v", i, ok, want)
		}
	}
	if ok, why := tr.check(); !ok {
		t.Fatal(why)
	}
}

func TestBtreeDeleteMissing(t *testing.T) {
	var tr btree
	tr.Put("a", 1)
	if tr.Delete("b") {
		t.Fatal("deleted missing key")
	}
	if tr.Len() != 1 {
		t.Fatal("len changed")
	}
}

func TestBtreeDeleteAll(t *testing.T) {
	var tr btree
	for i := 0; i < 500; i++ {
		tr.Put(fmt.Sprintf("%04d", i), uint64(i))
	}
	for i := 0; i < 500; i++ {
		if !tr.Delete(fmt.Sprintf("%04d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatalf("tree not empty: len=%d", tr.Len())
	}
}

func TestBtreeAscendRange(t *testing.T) {
	var tr btree
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), uint64(i))
	}
	var got []string
	tr.Ascend("020", "030", func(k string, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("range size = %d: %v", len(got), got)
	}
	if got[0] != "020" || got[9] != "029" {
		t.Fatalf("range = %v", got)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("range not sorted")
	}
}

func TestBtreeAscendEarlyStop(t *testing.T) {
	var tr btree
	for i := 0; i < 50; i++ {
		tr.Put(fmt.Sprintf("%02d", i), uint64(i))
	}
	n := 0
	tr.Ascend("00", "99", func(k string, v uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
}

func TestBtreeOpsCounted(t *testing.T) {
	var tr btree
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), uint64(i))
	}
	tr.TakeOps()
	tr.Get("050")
	ops := tr.TakeOps()
	if ops == 0 {
		t.Fatal("lookup counted no memory operations")
	}
	if tr.TakeOps() != 0 {
		t.Fatal("TakeOps did not reset")
	}
}

func TestBtreeAgainstMapModel(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
	}
	r := sim.NewRand(5)
	if err := quick.Check(func(ops []op) bool {
		var tr btree
		model := map[string]uint64{}
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key%50)
			switch o.Kind % 3 {
			case 0:
				v := r.Uint64()
				tr.Put(k, v)
				model[k] = v
			case 1:
				got := tr.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			case 2:
				got, ok := tr.Get(k)
				wantV, wantOK := model[k]
				if ok != wantOK || (ok && got != wantV) {
					return false
				}
			}
			if tr.Len() != len(model) {
				return false
			}
		}
		if ok, _ := tr.check(); !ok {
			return false
		}
		// Full-order check via Ascend.
		var keys []string
		tr.Ascend("", "\xff", func(k string, v uint64) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != len(model) {
			return false
		}
		return sort.StringsAreSorted(keys)
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
