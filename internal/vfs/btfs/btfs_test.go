package btfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/vfs"
)

func newFS() *FS {
	return New("btfs", vfs.NewIOModel(disk.New(disk.IDE7200()), 4096))
}

func run(t *testing.T, fn func(p *kernel.Process) error) {
	t.Helper()
	m := kernel.New(kernel.Config{})
	m.Spawn("test", fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateLookupReadWrite(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, err := fs.Create(p, fs.Root(), "file.txt")
		if err != nil {
			return err
		}
		got, err := fs.Lookup(p, fs.Root(), "file.txt")
		if err != nil || got != id {
			t.Errorf("lookup = %d,%v", got, err)
		}
		data := []byte("hello btfs")
		if _, err := fs.Write(p, id, 0, data); err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, err := fs.Read(p, id, 0, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Errorf("read = %q,%v", buf[:n], err)
		}
		a, err := fs.Getattr(p, id)
		if err != nil || a.Size != int64(len(data)) {
			t.Errorf("attr = %+v, %v", a, err)
		}
		return nil
	})
}

func TestCreateExisting(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		if _, err := fs.Create(p, fs.Root(), "x"); err != nil {
			return err
		}
		if _, err := fs.Create(p, fs.Root(), "x"); !errors.Is(err, vfs.ErrExist) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestMkdirUnlinkRmdir(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		d, err := fs.Mkdir(p, fs.Root(), "dir")
		if err != nil {
			return err
		}
		f, err := fs.Create(p, d, "inner")
		if err != nil {
			return err
		}
		_ = f
		if err := fs.Rmdir(p, fs.Root(), "dir"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Errorf("rmdir non-empty = %v", err)
		}
		if err := fs.Unlink(p, d, "inner"); err != nil {
			return err
		}
		if err := fs.Rmdir(p, fs.Root(), "dir"); err != nil {
			return err
		}
		if _, err := fs.Lookup(p, fs.Root(), "dir"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("lookup after rmdir = %v", err)
		}
		return nil
	})
}

func TestUnlinkDirFails(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		if _, err := fs.Mkdir(p, fs.Root(), "d"); err != nil {
			return err
		}
		if err := fs.Unlink(p, fs.Root(), "d"); !errors.Is(err, vfs.ErrIsDir) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestReaddirSortedAndScoped(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		d1, _ := fs.Mkdir(p, fs.Root(), "a")
		d2, _ := fs.Mkdir(p, fs.Root(), "b")
		for i := 0; i < 10; i++ {
			if _, err := fs.Create(p, d1, fmt.Sprintf("f%02d", i)); err != nil {
				return err
			}
		}
		if _, err := fs.Create(p, d2, "other"); err != nil {
			return err
		}
		ents, err := fs.Readdir(p, d1)
		if err != nil {
			return err
		}
		if len(ents) != 10 {
			t.Errorf("readdir(a) = %d entries", len(ents))
		}
		for i, e := range ents {
			if e.Name != fmt.Sprintf("f%02d", i) {
				t.Errorf("ents[%d] = %q", i, e.Name)
			}
		}
		root, err := fs.Readdir(p, fs.Root())
		if err != nil {
			return err
		}
		if len(root) != 2 {
			t.Errorf("readdir(/) = %d entries", len(root))
		}
		return nil
	})
}

func TestRename(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "old")
		d, _ := fs.Mkdir(p, fs.Root(), "sub")
		if err := fs.Rename(p, fs.Root(), "old", d, "new"); err != nil {
			return err
		}
		if _, err := fs.Lookup(p, fs.Root(), "old"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("old still present: %v", err)
		}
		got, err := fs.Lookup(p, d, "new")
		if err != nil || got != id {
			t.Errorf("new = %d,%v", got, err)
		}
		return nil
	})
}

func TestRenameOverwrites(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		a, _ := fs.Create(p, fs.Root(), "a")
		if _, err := fs.Create(p, fs.Root(), "b"); err != nil {
			return err
		}
		if err := fs.Rename(p, fs.Root(), "a", fs.Root(), "b"); err != nil {
			return err
		}
		got, err := fs.Lookup(p, fs.Root(), "b")
		if err != nil || got != a {
			t.Errorf("b = %d,%v want %d", got, err, a)
		}
		ents, _ := fs.Readdir(p, fs.Root())
		if len(ents) != 1 {
			t.Errorf("root has %d entries", len(ents))
		}
		return nil
	})
}

func TestTruncate(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Write(p, id, 0, []byte("0123456789")); err != nil {
			return err
		}
		if err := fs.Truncate(p, id, 4); err != nil {
			return err
		}
		buf := make([]byte, 16)
		n, _ := fs.Read(p, id, 0, buf)
		if string(buf[:n]) != "0123" {
			t.Errorf("after shrink: %q", buf[:n])
		}
		if err := fs.Truncate(p, id, 8); err != nil {
			return err
		}
		n, _ = fs.Read(p, id, 0, buf)
		if n != 8 || !bytes.Equal(buf[4:8], []byte{0, 0, 0, 0}) {
			t.Errorf("after grow: %v", buf[:n])
		}
		return nil
	})
}

func TestSparseWriteAndOffsets(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		id, _ := fs.Create(p, fs.Root(), "f")
		if _, err := fs.Write(p, id, 100, []byte("end")); err != nil {
			return err
		}
		a, _ := fs.Getattr(p, id)
		if a.Size != 103 {
			t.Errorf("size = %d", a.Size)
		}
		buf := make([]byte, 3)
		if n, _ := fs.Read(p, id, 100, buf); n != 3 || string(buf) != "end" {
			t.Errorf("read at offset: %q", buf[:n])
		}
		if n, _ := fs.Read(p, id, 500, buf); n != 0 {
			t.Errorf("read past EOF = %d", n)
		}
		return nil
	})
}

func TestMemTouchHookAndCounter(t *testing.T) {
	fs := newFS()
	var hookOps int64
	fs.MemTouch = func(p *kernel.Process, ops int64) { hookOps += ops }
	run(t, func(p *kernel.Process) error {
		for i := 0; i < 50; i++ {
			if _, err := fs.Create(p, fs.Root(), fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		for i := 0; i < 50; i++ {
			if _, err := fs.Lookup(p, fs.Root(), fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if hookOps == 0 || fs.TotalMemOps == 0 {
		t.Fatalf("instrumentation hook saw %d ops, counter %d", hookOps, fs.TotalMemOps)
	}
	if hookOps != fs.TotalMemOps {
		t.Fatalf("hook %d != counter %d", hookOps, fs.TotalMemOps)
	}
}

func TestMetadataHeavierThanDataPath(t *testing.T) {
	// The E7 asymmetry: metadata ops run much more module code (tree
	// ops) than data-path byte copies do.
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		for i := 0; i < 200; i++ {
			if _, err := fs.Create(p, fs.Root(), fmt.Sprintf("f%03d", i)); err != nil {
				return err
			}
		}
		metaOps := fs.TotalMemOps
		id, _ := fs.Lookup(p, fs.Root(), "f000")
		fs.TotalMemOps = 0
		buf := make([]byte, 4096)
		for i := 0; i < 200; i++ {
			if _, err := fs.Write(p, id, 0, buf); err != nil {
				return err
			}
		}
		dataOps := fs.TotalMemOps
		if metaOps < 4*dataOps {
			t.Errorf("metadata ops %d not >> data ops %d", metaOps, dataOps)
		}
		return nil
	})
}

func TestLargeDirectoryScales(t *testing.T) {
	fs := newFS()
	run(t, func(p *kernel.Process) error {
		const n = 3000
		for i := 0; i < n; i++ {
			if _, err := fs.Create(p, fs.Root(), fmt.Sprintf("file-%05d", i)); err != nil {
				return err
			}
		}
		ents, err := fs.Readdir(p, fs.Root())
		if err != nil {
			return err
		}
		if len(ents) != n {
			t.Errorf("readdir = %d", len(ents))
		}
		if d := fs.TreeDepth(); d < 2 {
			t.Errorf("depth = %d", d)
		}
		return nil
	})
}
