// Package btfs is a balanced-tree file system: directory entries live
// in a single B-tree keyed by (directory, name), the way Reiserfs
// keeps its items in one balanced tree. It is the module the KGCC
// experiment compiles with bounds checking (§3.4): the MemTouch hook
// receives the number of memory operations (key comparisons, record
// moves) each call performed, and the instrumented configuration
// charges one runtime check per operation.
package btfs

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// FS implements vfs.FS.
type FS struct {
	name  string
	io    *vfs.IOModel
	tree  btree
	nodes map[vfs.NodeID]*bnode
	next  vfs.NodeID

	OpCPU    sim.Cycles
	CopyByte sim.Cycles
	// MemOpCPU is the baseline CPU cost of one counted machine-level
	// memory operation in module code.
	MemOpCPU sim.Cycles
	// OpsScale converts logical tree operations (a key comparison, an
	// entry move) into machine-level memory operations: each logical
	// operation touches a multi-word key and record.
	OpsScale int64
	// JournalWords is the size, in machine words, of the journal
	// record written for every metadata mutation — Reiserfs is a
	// journaling file system, and its journal copies are module code
	// the bounds checker instruments.
	JournalWords int64
	// JournalCommit forces a synchronous journal write to disk every
	// N records (0 disables). Commit latency is identical whether or
	// not the module is instrumented, which is why PostMark's elapsed
	// ratio sits far below its system-time ratio in E7.
	JournalCommit int64

	// MemTouch, if set, is invoked after each operation with the
	// number of module memory operations performed; the KGCC runtime
	// hooks in here. Data-path byte copies are generic kernel code
	// (not module code), so they are not reported.
	MemTouch func(p *kernel.Process, ops int64)

	// TotalMemOps accumulates all counted module memory operations.
	TotalMemOps int64

	jblock int64
}

type bnode struct {
	attr vfs.Attr
	data []byte
	// nchildren counts directory entries (for rmdir emptiness).
	nchildren int
	// mapped counts data blocks with tree-mapping items.
	mapped int64
}

// New creates an empty btfs over io.
func New(name string, io *vfs.IOModel) *FS {
	fs := &FS{
		name:          name,
		io:            io,
		nodes:         make(map[vfs.NodeID]*bnode),
		next:          2,
		OpCPU:         vfs.OpCPU,
		CopyByte:      1,
		MemOpCPU:      8,
		OpsScale:      10,
		JournalWords:  1792,
		JournalCommit: 8,
	}
	fs.nodes[1] = &bnode{attr: vfs.Attr{ID: 1, Type: vfs.TypeDir, Nlink: 2, Mode: 0755}}
	return fs
}

// journalNode is the reserved node id whose blocks hold the journal.
const journalNode vfs.NodeID = 0

// journal accounts one metadata transaction: the journal record copy
// (module code, checked), the journal block write, and the periodic
// synchronous commit.
func (fs *FS) journal(p *kernel.Process) {
	fs.touch(p, fs.JournalWords)
	fs.jblock++
	key := vfs.BlockKey{Node: journalNode, Block: fs.jblock % 1024}
	if fs.JournalCommit > 0 && fs.jblock%fs.JournalCommit == 0 {
		fs.io.WriteThrough(p, key)
		return
	}
	fs.io.WriteBlock(p, key)
}

// FSName implements vfs.FS.
func (fs *FS) FSName() string { return fs.name }

// Root implements vfs.FS.
func (fs *FS) Root() vfs.NodeID { return 1 }

// IO exposes the buffer cache.
func (fs *FS) IO() *vfs.IOModel { return fs.io }

// key builds the tree key for a directory entry. Keys order first by
// directory, then by name, so one directory's entries are contiguous.
func key(dir vfs.NodeID, name string) string {
	return fmt.Sprintf("%016x/%s", uint64(dir), name)
}

// settle charges module CPU for the tree operations performed since
// the last settle, scaled to machine-level memory operations, and
// reports them to the instrumentation hook.
func (fs *FS) settle(p *kernel.Process) {
	fs.touch(p, fs.tree.TakeOps()*fs.OpsScale)
}

// touch accounts n module memory operations.
func (fs *FS) touch(p *kernel.Process, n int64) {
	if n == 0 {
		return
	}
	fs.TotalMemOps += n
	p.Charge(sim.Cycles(n) * fs.MemOpCPU)
	if fs.MemTouch != nil {
		fs.MemTouch(p, n)
	}
}

func (fs *FS) dirNode(id vfs.NodeID) (*bnode, error) {
	n, ok := fs.nodes[id]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	if n.attr.Type != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	return n, nil
}

// Lookup implements vfs.FS.
func (fs *FS) Lookup(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	if _, err := fs.dirNode(dir); err != nil {
		return 0, err
	}
	fs.io.ReadBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	id, ok := fs.tree.Get(key(dir, name))
	if !ok {
		return 0, vfs.ErrNotExist
	}
	return vfs.NodeID(id), nil
}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(p *kernel.Process, id vfs.NodeID) (vfs.Attr, error) {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	n, ok := fs.nodes[id]
	if !ok {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	fs.io.ReadBlock(p, vfs.BlockKey{Node: id, Block: -1})
	// Stat items live in the tree too: account a lookup's worth of
	// tree traversal.
	fs.tree.Get(key(id, ""))
	return n.attr, nil
}

// Create implements vfs.FS.
func (fs *FS) Create(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(2 * fs.OpCPU)
	defer fs.settle(p)
	d, err := fs.dirNode(dir)
	if err != nil {
		return 0, err
	}
	if _, ok := fs.tree.Get(key(dir, name)); ok {
		return 0, vfs.ErrExist
	}
	id := fs.next
	fs.next++
	fs.nodes[id] = &bnode{attr: vfs.Attr{ID: id, Type: vfs.TypeReg, Nlink: 1, Mode: 0644, Mtime: p.M.Clock.Now()}}
	fs.tree.Put(key(dir, name), uint64(id))
	d.nchildren++
	fs.journal(p)
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: -1})
	return id, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(2 * fs.OpCPU)
	defer fs.settle(p)
	d, err := fs.dirNode(dir)
	if err != nil {
		return 0, err
	}
	if _, ok := fs.tree.Get(key(dir, name)); ok {
		return 0, vfs.ErrExist
	}
	id := fs.next
	fs.next++
	fs.nodes[id] = &bnode{attr: vfs.Attr{ID: id, Type: vfs.TypeDir, Nlink: 2, Mode: 0755, Mtime: p.M.Clock.Now()}}
	fs.tree.Put(key(dir, name), uint64(id))
	d.nchildren++
	fs.journal(p)
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: 0})
	return id, nil
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(p *kernel.Process, dir vfs.NodeID, name string) error {
	p.Charge(2 * fs.OpCPU)
	defer fs.settle(p)
	d, err := fs.dirNode(dir)
	if err != nil {
		return err
	}
	idRaw, ok := fs.tree.Get(key(dir, name))
	if !ok {
		return vfs.ErrNotExist
	}
	id := vfs.NodeID(idRaw)
	n := fs.nodes[id]
	if n.attr.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	fs.tree.Delete(key(dir, name))
	d.nchildren--
	fs.journal(p)
	n.attr.Nlink--
	if n.attr.Nlink == 0 {
		fs.dropBlocks(id, n)
		delete(fs.nodes, id)
	}
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	return nil
}

func (fs *FS) dropBlocks(id vfs.NodeID, n *bnode) {
	blocks := int64(len(n.data)+mem.PageSize-1) / mem.PageSize
	for b := int64(0); b <= blocks; b++ {
		fs.io.Drop(vfs.BlockKey{Node: id, Block: b})
	}
	fs.io.Drop(vfs.BlockKey{Node: id, Block: -1})
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(p *kernel.Process, dir vfs.NodeID, name string) error {
	p.Charge(2 * fs.OpCPU)
	defer fs.settle(p)
	d, err := fs.dirNode(dir)
	if err != nil {
		return err
	}
	idRaw, ok := fs.tree.Get(key(dir, name))
	if !ok {
		return vfs.ErrNotExist
	}
	id := vfs.NodeID(idRaw)
	n := fs.nodes[id]
	if n.attr.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if n.nchildren != 0 {
		return vfs.ErrNotEmpty
	}
	fs.tree.Delete(key(dir, name))
	d.nchildren--
	fs.journal(p)
	delete(fs.nodes, id)
	fs.io.Drop(vfs.BlockKey{Node: id, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	return nil
}

// Readdir implements vfs.FS.
func (fs *FS) Readdir(p *kernel.Process, dir vfs.NodeID) ([]vfs.DirEnt, error) {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	if _, err := fs.dirNode(dir); err != nil {
		return nil, err
	}
	fs.io.ReadBlock(p, vfs.BlockKey{Node: dir, Block: 0})
	prefix := key(dir, "")
	var ents []vfs.DirEnt
	fs.tree.Ascend(prefix, key(dir+1, ""), func(k string, v uint64) bool {
		name := k[len(prefix):]
		id := vfs.NodeID(v)
		t := vfs.TypeReg
		if n, ok := fs.nodes[id]; ok {
			t = n.attr.Type
		}
		ents = append(ents, vfs.DirEnt{Name: name, ID: id, Type: t})
		return true
	})
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, nil
}

// Read implements vfs.FS.
func (fs *FS) Read(p *kernel.Process, id vfs.NodeID, off int64, buf []byte) (int, error) {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	n, ok := fs.nodes[id]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	count := copy(buf, n.data[off:])
	for b := off / mem.PageSize; b <= (off+int64(count)-1)/mem.PageSize; b++ {
		// Locate the block's item in the tree, then read it. The byte
		// copy itself is generic kernel code.
		fs.tree.Get(fmt.Sprintf("%016x#%08x", uint64(id), uint64(b)))
		fs.io.ReadBlock(p, vfs.BlockKey{Node: id, Block: b})
	}
	p.Charge(sim.Cycles(count) * fs.CopyByte)
	return count, nil
}

// Write implements vfs.FS.
func (fs *FS) Write(p *kernel.Process, id vfs.NodeID, off int64, data []byte) (int, error) {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	n, ok := fs.nodes[id]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
		n.attr.Size = end
	}
	copy(n.data[off:], data)
	n.attr.Mtime = p.M.Clock.Now()
	journaled := false
	for b := off / mem.PageSize; b <= (end-1)/mem.PageSize && len(data) > 0; b++ {
		// Every data block is an item in the tree: existing blocks
		// are located, new blocks allocated and inserted (and the
		// allocation journaled).
		bkey := fmt.Sprintf("%016x#%08x", uint64(id), uint64(b))
		if _, ok := fs.tree.Get(bkey); !ok {
			fs.tree.Put(bkey, uint64(b))
			n.mapped++
			if !journaled {
				fs.journal(p)
				journaled = true
			}
		}
		fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: b})
	}
	p.Charge(sim.Cycles(len(data)) * fs.CopyByte)
	return len(data), nil
}

// Truncate implements vfs.FS.
func (fs *FS) Truncate(p *kernel.Process, id vfs.NodeID, size int64) error {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	n, ok := fs.nodes[id]
	if !ok {
		return vfs.ErrNotExist
	}
	if n.attr.Type == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size < 0 {
		return vfs.ErrInval
	}
	switch {
	case size < int64(len(n.data)):
		n.data = n.data[:size]
	case size > int64(len(n.data)):
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.attr.Size = size
	fs.io.WriteBlock(p, vfs.BlockKey{Node: id, Block: -1})
	return nil
}

// Rename implements vfs.FS.
func (fs *FS) Rename(p *kernel.Process, odir vfs.NodeID, oname string, ndir vfs.NodeID, nname string) error {
	p.Charge(3 * fs.OpCPU)
	defer fs.settle(p)
	od, err := fs.dirNode(odir)
	if err != nil {
		return err
	}
	nd, err := fs.dirNode(ndir)
	if err != nil {
		return err
	}
	idRaw, ok := fs.tree.Get(key(odir, oname))
	if !ok {
		return vfs.ErrNotExist
	}
	if existingRaw, ok := fs.tree.Get(key(ndir, nname)); ok {
		if fs.nodes[vfs.NodeID(existingRaw)].attr.Type == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		if err := fs.Unlink(p, ndir, nname); err != nil {
			return err
		}
	}
	fs.tree.Delete(key(odir, oname))
	od.nchildren--
	fs.tree.Put(key(ndir, nname), idRaw)
	nd.nchildren++
	fs.journal(p)
	fs.io.WriteBlock(p, vfs.BlockKey{Node: odir, Block: 0})
	fs.io.WriteBlock(p, vfs.BlockKey{Node: ndir, Block: 0})
	return nil
}

// Sync implements vfs.FS.
func (fs *FS) Sync(p *kernel.Process) error {
	p.Charge(fs.OpCPU)
	defer fs.settle(p)
	fs.io.Sync(p)
	return nil
}

// NodeCount reports live inodes.
func (fs *FS) NodeCount() int { return len(fs.nodes) }

// TreeDepth reports the directory tree's B-tree height.
func (fs *FS) TreeDepth() int { return fs.tree.depth() }

var _ vfs.FS = (*FS)(nil)
