package vfs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
)

// run executes fn as a process on a fresh machine and returns the
// machine for inspection.
func run(t *testing.T, fn func(p *kernel.Process) error) *kernel.Machine {
	t.Helper()
	m := kernel.New(kernel.Config{})
	m.Spawn("test", fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIOModelMissThenHit(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 100)
	run(t, func(p *kernel.Process) error {
		key := BlockKey{Node: 1, Block: 0}
		io.ReadBlock(p, key)
		if io.Misses != 1 || io.Hits != 0 {
			t.Errorf("after cold read: hits=%d misses=%d", io.Hits, io.Misses)
		}
		io.ReadBlock(p, key)
		if io.Hits != 1 {
			t.Errorf("warm read did not hit")
		}
		return nil
	})
}

func TestIOModelMissBlocksProcess(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 100)
	var wait int64
	run(t, func(p *kernel.Process) error {
		io.ReadBlock(p, BlockKey{Node: 1, Block: 0})
		_, _, w := p.Times()
		wait = int64(w)
		return nil
	})
	if wait == 0 {
		t.Fatal("cache miss did not block for disk latency")
	}
}

func TestIOModelEvictionWritesBackDirty(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 4)
	run(t, func(p *kernel.Process) error {
		for i := int64(0); i < 10; i++ {
			io.WriteBlock(p, BlockKey{Node: 1, Block: i})
		}
		return nil
	})
	if io.Cached() != 4 {
		t.Fatalf("cached = %d, want 4", io.Cached())
	}
	if io.Writebacks != 6 {
		t.Fatalf("writebacks = %d, want 6", io.Writebacks)
	}
}

func TestIOModelLRUOrder(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 2)
	run(t, func(p *kernel.Process) error {
		a, b, c := BlockKey{1, 0}, BlockKey{1, 1}, BlockKey{1, 2}
		io.ReadBlock(p, a)
		io.ReadBlock(p, b)
		io.ReadBlock(p, a) // refresh a; b is now LRU
		io.ReadBlock(p, c) // evicts b
		misses := io.Misses
		io.ReadBlock(p, a)
		if io.Misses != misses {
			t.Error("a was evicted despite being MRU")
		}
		io.ReadBlock(p, b)
		if io.Misses != misses+1 {
			t.Error("b should have been evicted")
		}
		return nil
	})
}

func TestIOModelSyncFlushesDirty(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 100)
	run(t, func(p *kernel.Process) error {
		io.WriteBlock(p, BlockKey{1, 0})
		io.WriteBlock(p, BlockKey{1, 1})
		io.Sync(p)
		if io.SyncWrites != 2 {
			t.Errorf("sync writes = %d", io.SyncWrites)
		}
		io.Sync(p)
		if io.SyncWrites != 2 {
			t.Errorf("second sync rewrote clean blocks")
		}
		return nil
	})
}

func TestIOModelDrop(t *testing.T) {
	io := NewIOModel(disk.New(disk.IDE7200()), 100)
	run(t, func(p *kernel.Process) error {
		io.WriteBlock(p, BlockKey{1, 0})
		io.Drop(BlockKey{1, 0})
		if io.Cached() != 0 {
			t.Error("drop did not remove block")
		}
		io.Sync(p)
		if io.SyncWrites != 0 {
			t.Error("dropped block written back")
		}
		return nil
	})
}

func TestSplitAndClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/", "/"},
		{"", "/"},
		{"/a/b/", "/a/b"},
		{"a/b", "/a/b"},
		{"/a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../a", "/a"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	parts := Split("/usr/local/bin")
	if len(parts) != 3 || parts[2] != "bin" {
		t.Errorf("Split = %v", parts)
	}
}

func TestDirEntBytes(t *testing.T) {
	e := DirEnt{Name: "hello"}
	if e.Bytes() != DirEntFixed+5 {
		t.Fatalf("Bytes = %d", e.Bytes())
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeReg.String() != "reg" || TypeDir.String() != "dir" || TypeDev.String() != "dev" {
		t.Fatal("type names")
	}
	if FileType(9).String() != "?" {
		t.Fatal("unknown type")
	}
}
