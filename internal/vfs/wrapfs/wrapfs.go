// Package wrapfs is a stackable passthrough file system, reproducing
// the Wrapfs the paper instruments for the Kefence evaluation (§3.2):
//
//	"Wrapfs is a wrapper file system that just redirects file system
//	calls to a lower-level file system. ... Each Wrapfs object
//	(inode, file, etc.) contains a private data field which gets
//	dynamically allocated. In addition to this, temporary page
//	buffers and strings containing file names are also allocated
//	dynamically."
//
// All dynamic allocations go through an alloc.Allocator provided at
// mount time, so the Kefence experiment swaps plain kmalloc for
// guarded vmalloc without touching this code — exactly the paper's
// compiler-flag-driven kmalloc→vmalloc redirection.
package wrapfs

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// PrivateSize is the size of the per-object private data field. The
// paper reports a mean allocation size of 80 bytes for the
// instrumented Wrapfs; private fields dominate that mix.
const PrivateSize = 80

// FS implements vfs.FS by delegating to Lower.
type FS struct {
	Lower vfs.FS

	as  *mem.AddressSpace
	mem alloc.Allocator

	// PageBufSize and PageBufEvery control the temporary page buffers
	// on the data path: every PageBufEvery-th read/write allocates a
	// PageBufSize staging buffer and copies through it.
	PageBufSize  int
	PageBufEvery int

	// OpCPU is the wrapper's own per-operation overhead.
	OpCPU sim.Cycles

	private map[vfs.NodeID]mem.Addr
	dataOps int

	// Stats.
	NameAllocs, PageAllocs, PrivateAllocs int64
}

// New wraps lower, allocating through a using space as for buffer
// access.
func New(lower vfs.FS, as *mem.AddressSpace, a alloc.Allocator) *FS {
	return &FS{
		Lower:        lower,
		as:           as,
		mem:          a,
		PageBufSize:  mem.PageSize,
		PageBufEvery: 64,
		OpCPU:        120,
		private:      make(map[vfs.NodeID]mem.Addr),
	}
}

// FSName implements vfs.FS.
func (fs *FS) FSName() string { return "wrapfs(" + fs.Lower.FSName() + ")" }

// Root implements vfs.FS.
func (fs *FS) Root() vfs.NodeID { return fs.Lower.Root() }

// ensurePrivate lazily allocates the per-object private data field
// and touches every byte of it (initialization), which is what makes
// page-granular allocators feel TLB pressure.
func (fs *FS) ensurePrivate(p *kernel.Process, id vfs.NodeID) error {
	if _, ok := fs.private[id]; ok {
		return nil
	}
	addr, err := fs.mem.Alloc(PrivateSize)
	if err != nil {
		return err
	}
	var init [PrivateSize]byte
	if err := fs.as.View(addr, PrivateSize).CopyOut(0, init[:]); err != nil {
		return err
	}
	fs.private[id] = addr
	fs.PrivateAllocs++
	return nil
}

// dropPrivate frees the private field when the object goes away.
func (fs *FS) dropPrivate(id vfs.NodeID) {
	if addr, ok := fs.private[id]; ok {
		_ = fs.mem.Free(addr)
		delete(fs.private, id)
	}
}

// nameBuf copies name into a freshly allocated kernel string buffer
// and frees it, charging the copy; this is the "strings containing
// file names are allocated dynamically" behaviour.
func (fs *FS) nameBuf(p *kernel.Process, name string) error {
	if len(name) == 0 {
		return nil
	}
	addr, err := fs.mem.Alloc(len(name) + 1)
	if err != nil {
		return err
	}
	fs.NameAllocs++
	if err := fs.as.View(addr, len(name)+1).CopyOut(0, append([]byte(name), 0)); err != nil {
		return err
	}
	return fs.mem.Free(addr)
}

// pageBuf optionally stages n bytes of file data through a temporary
// buffer.
func (fs *FS) pageBuf(p *kernel.Process, n int) error {
	fs.dataOps++
	if fs.PageBufEvery <= 0 || fs.dataOps%fs.PageBufEvery != 0 {
		return nil
	}
	size := fs.PageBufSize
	if n < size {
		size = n
	}
	if size <= 0 {
		return nil
	}
	addr, err := fs.mem.Alloc(size)
	if err != nil {
		return err
	}
	fs.PageAllocs++
	buf := make([]byte, size)
	v := fs.as.View(addr, size)
	if err := v.CopyOut(0, buf); err != nil {
		return err
	}
	if err := v.CopyIn(0, buf); err != nil {
		return err
	}
	return fs.mem.Free(addr)
}

// Lookup implements vfs.FS.
func (fs *FS) Lookup(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, name); err != nil {
		return 0, err
	}
	id, err := fs.Lower.Lookup(p, dir, name)
	if err != nil {
		return 0, err
	}
	if err := fs.ensurePrivate(p, id); err != nil {
		return 0, err
	}
	return id, nil
}

// Getattr implements vfs.FS.
func (fs *FS) Getattr(p *kernel.Process, n vfs.NodeID) (vfs.Attr, error) {
	p.Charge(fs.OpCPU)
	if err := fs.ensurePrivate(p, n); err != nil {
		return vfs.Attr{}, err
	}
	return fs.Lower.Getattr(p, n)
}

// Create implements vfs.FS.
func (fs *FS) Create(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, name); err != nil {
		return 0, err
	}
	id, err := fs.Lower.Create(p, dir, name)
	if err != nil {
		return 0, err
	}
	if err := fs.ensurePrivate(p, id); err != nil {
		return 0, err
	}
	return id, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(p *kernel.Process, dir vfs.NodeID, name string) (vfs.NodeID, error) {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, name); err != nil {
		return 0, err
	}
	id, err := fs.Lower.Mkdir(p, dir, name)
	if err != nil {
		return 0, err
	}
	if err := fs.ensurePrivate(p, id); err != nil {
		return 0, err
	}
	return id, nil
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(p *kernel.Process, dir vfs.NodeID, name string) error {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, name); err != nil {
		return err
	}
	id, lerr := fs.Lower.Lookup(p, dir, name)
	if err := fs.Lower.Unlink(p, dir, name); err != nil {
		return err
	}
	if lerr == nil {
		fs.dropPrivate(id)
	}
	return nil
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(p *kernel.Process, dir vfs.NodeID, name string) error {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, name); err != nil {
		return err
	}
	id, lerr := fs.Lower.Lookup(p, dir, name)
	if err := fs.Lower.Rmdir(p, dir, name); err != nil {
		return err
	}
	if lerr == nil {
		fs.dropPrivate(id)
	}
	return nil
}

// Readdir implements vfs.FS.
func (fs *FS) Readdir(p *kernel.Process, dir vfs.NodeID) ([]vfs.DirEnt, error) {
	p.Charge(fs.OpCPU)
	return fs.Lower.Readdir(p, dir)
}

// Read implements vfs.FS.
func (fs *FS) Read(p *kernel.Process, n vfs.NodeID, off int64, buf []byte) (int, error) {
	p.Charge(fs.OpCPU)
	if err := fs.ensurePrivate(p, n); err != nil {
		return 0, err
	}
	if err := fs.pageBuf(p, len(buf)); err != nil {
		return 0, err
	}
	return fs.Lower.Read(p, n, off, buf)
}

// Write implements vfs.FS.
func (fs *FS) Write(p *kernel.Process, n vfs.NodeID, off int64, data []byte) (int, error) {
	p.Charge(fs.OpCPU)
	if err := fs.ensurePrivate(p, n); err != nil {
		return 0, err
	}
	if err := fs.pageBuf(p, len(data)); err != nil {
		return 0, err
	}
	return fs.Lower.Write(p, n, off, data)
}

// Truncate implements vfs.FS.
func (fs *FS) Truncate(p *kernel.Process, n vfs.NodeID, size int64) error {
	p.Charge(fs.OpCPU)
	return fs.Lower.Truncate(p, n, size)
}

// Rename implements vfs.FS.
func (fs *FS) Rename(p *kernel.Process, odir vfs.NodeID, oname string, ndir vfs.NodeID, nname string) error {
	p.Charge(fs.OpCPU)
	if err := fs.nameBuf(p, oname); err != nil {
		return err
	}
	if err := fs.nameBuf(p, nname); err != nil {
		return err
	}
	return fs.Lower.Rename(p, odir, oname, ndir, nname)
}

// Sync implements vfs.FS.
func (fs *FS) Sync(p *kernel.Process) error {
	p.Charge(fs.OpCPU)
	return fs.Lower.Sync(p)
}

// Teardown frees all outstanding private data (unmount). Nodes are
// freed in ID order: the frees reshape the allocator's free list, so
// map order here would leak into every later allocation.
func (fs *FS) Teardown() error {
	ids := make([]vfs.NodeID, 0, len(fs.private))
	for id := range fs.private {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := fs.mem.Free(fs.private[id]); err != nil {
			return fmt.Errorf("wrapfs: freeing private of node %d: %w", id, err)
		}
		delete(fs.private, id)
	}
	return nil
}

// LivePrivate reports outstanding private-data allocations.
func (fs *FS) LivePrivate() int { return len(fs.private) }

var _ vfs.FS = (*FS)(nil)
