package wrapfs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
)

func setup() (*kernel.Machine, *FS, *memfs.FS) {
	m := kernel.New(kernel.Config{})
	lower := memfs.New("memfs", vfs.NewIOModel(disk.New(disk.IDE7200()), 4096))
	w := New(lower, m.KAS, m.Km)
	return m, w, lower
}

func run(t *testing.T, m *kernel.Machine, fn func(p *kernel.Process) error) {
	t.Helper()
	m.Spawn("test", fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPassthroughSemantics(t *testing.T) {
	m, w, lower := setup()
	run(t, m, func(p *kernel.Process) error {
		id, err := w.Create(p, w.Root(), "f")
		if err != nil {
			return err
		}
		msg := []byte("through the wrapper")
		if _, err := w.Write(p, id, 0, msg); err != nil {
			return err
		}
		// Visible through the lower FS directly.
		lowID, err := lower.Lookup(p, lower.Root(), "f")
		if err != nil || lowID != id {
			t.Errorf("lower lookup = %d,%v", lowID, err)
		}
		buf := make([]byte, 64)
		n, err := w.Read(p, id, 0, buf)
		if err != nil || !bytes.Equal(buf[:n], msg) {
			t.Errorf("read = %q,%v", buf[:n], err)
		}
		return nil
	})
}

func TestPrivateDataAllocatedPerObject(t *testing.T) {
	m, w, _ := setup()
	run(t, m, func(p *kernel.Process) error {
		for i := 0; i < 10; i++ {
			if _, err := w.Create(p, w.Root(), fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if w.LivePrivate() != 10 {
		t.Fatalf("live private = %d, want 10", w.LivePrivate())
	}
	if w.PrivateAllocs != 10 {
		t.Fatalf("private allocs = %d", w.PrivateAllocs)
	}
}

func TestPrivateFreedOnUnlink(t *testing.T) {
	m, w, _ := setup()
	run(t, m, func(p *kernel.Process) error {
		if _, err := w.Create(p, w.Root(), "f"); err != nil {
			return err
		}
		if err := w.Unlink(p, w.Root(), "f"); err != nil {
			return err
		}
		return nil
	})
	if w.LivePrivate() != 0 {
		t.Fatalf("live private = %d after unlink", w.LivePrivate())
	}
}

func TestNameBuffersAllocatedAndFreed(t *testing.T) {
	m, w, _ := setup()
	run(t, m, func(p *kernel.Process) error {
		if _, err := w.Create(p, w.Root(), "some-long-file-name"); err != nil {
			return err
		}
		if _, err := w.Lookup(p, w.Root(), "some-long-file-name"); err != nil {
			return err
		}
		return nil
	})
	if w.NameAllocs != 2 {
		t.Fatalf("name allocs = %d", w.NameAllocs)
	}
	// Name buffers must not leak: only private data outstanding.
	if live := m.Km.Stats().Live; live != 1 {
		t.Fatalf("live kernel allocations = %d, want 1 (the private field)", live)
	}
}

func TestPageBuffersOnDataPath(t *testing.T) {
	m, w, _ := setup()
	w.PageBufEvery = 1 // stage every data op
	run(t, m, func(p *kernel.Process) error {
		id, err := w.Create(p, w.Root(), "f")
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if _, err := w.Write(p, id, int64(i*4096), make([]byte, 4096)); err != nil {
				return err
			}
		}
		return nil
	})
	if w.PageAllocs != 5 {
		t.Fatalf("page allocs = %d", w.PageAllocs)
	}
}

func TestTeardownReleasesEverything(t *testing.T) {
	m, w, _ := setup()
	run(t, m, func(p *kernel.Process) error {
		for i := 0; i < 20; i++ {
			if _, err := w.Create(p, w.Root(), fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err := w.Teardown(); err != nil {
		t.Fatal(err)
	}
	if m.Km.Stats().Live != 0 {
		t.Fatalf("leaked %d allocations", m.Km.Stats().Live)
	}
}

func TestVmallocBackedWrapfsUsesWholePagesPerAlloc(t *testing.T) {
	// The Kefence configuration: same module, page-granular allocator.
	m := kernel.New(kernel.Config{})
	lower := memfs.New("memfs", vfs.NewIOModel(disk.New(disk.IDE7200()), 4096))
	w := New(lower, m.KAS, m.Vm)
	run(t, m, func(p *kernel.Process) error {
		for i := 0; i < 5; i++ {
			if _, err := w.Create(p, w.Root(), fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	s := m.Vm.Stats()
	if s.LivePages < 5 {
		t.Fatalf("live pages = %d, want one per private field", s.LivePages)
	}
	if got := s.MeanAllocSize(); got > 100 {
		t.Fatalf("mean alloc size = %.1f, expected small allocations", got)
	}
}

func TestWrapfsMetadataOpsDelegate(t *testing.T) {
	m, w, _ := setup()
	run(t, m, func(p *kernel.Process) error {
		d, err := w.Mkdir(p, w.Root(), "dir")
		if err != nil {
			return err
		}
		if _, err := w.Create(p, d, "f"); err != nil {
			return err
		}
		ents, err := w.Readdir(p, d)
		if err != nil {
			return err
		}
		if len(ents) != 1 || ents[0].Name != "f" {
			t.Errorf("readdir = %v", ents)
		}
		if err := w.Rename(p, d, "f", d, "g"); err != nil {
			return err
		}
		a, err := w.Getattr(p, d)
		if err != nil || a.Type != vfs.TypeDir {
			t.Errorf("getattr = %+v, %v", a, err)
		}
		if err := w.Truncate(p, ents[0].ID, 0); err != nil {
			return err
		}
		if err := w.Unlink(p, d, "g"); err != nil {
			return err
		}
		if err := w.Rmdir(p, w.Root(), "dir"); err != nil {
			return err
		}
		return w.Sync(p)
	})
}

var _ alloc.Allocator = (*alloc.Kmalloc)(nil)
