// Package vfs is the simulated kernel's virtual file system layer:
// the FS interface that concrete file systems (memfs, btfs, wrapfs)
// implement, a dentry cache guarded by the global dcache_lock the
// paper instruments in §3.3, a mount namespace with path resolution,
// and a buffer-cache/disk model that gives workloads realistic
// CPU-versus-I/O balance.
package vfs

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// NodeID identifies an inode within one file system.
type NodeID uint64

// FileType distinguishes inode flavors.
type FileType uint8

// Inode types.
const (
	TypeReg FileType = iota
	TypeDir
	TypeDev
)

func (t FileType) String() string {
	switch t {
	case TypeReg:
		return "reg"
	case TypeDir:
		return "dir"
	case TypeDev:
		return "dev"
	}
	return "?"
}

// Attr is the stat payload. StatSize is the number of bytes a stat
// result occupies when copied to user space (struct stat on the
// paper's ia32 Linux is 88 bytes; we round to 96 for alignment).
type Attr struct {
	ID    NodeID
	Type  FileType
	Size  int64
	Nlink int
	Mode  uint16
	Mtime sim.Cycles
}

// StatSize is the user-visible size of a stat structure.
const StatSize = 96

// DirEnt is one directory entry. DirEntSize approximates the linux
// dirent record copied out by getdents (fixed part + name).
type DirEnt struct {
	Name string
	ID   NodeID
	Type FileType
}

// DirEntFixed is the fixed portion of a serialized dirent.
const DirEntFixed = 24

// Bytes reports the serialized size of the entry.
func (d DirEnt) Bytes() int { return DirEntFixed + len(d.Name) }

// Errors mirroring the kernel's errno values.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrInval    = errors.New("vfs: invalid argument")
	ErrNoDev    = errors.New("vfs: no such device")
)

// FS is the interface every simulated file system implements. All
// operations run in kernel mode on behalf of process p and charge
// their own CPU and I/O costs.
type FS interface {
	FSName() string
	Root() NodeID
	Lookup(p *kernel.Process, dir NodeID, name string) (NodeID, error)
	Getattr(p *kernel.Process, n NodeID) (Attr, error)
	Create(p *kernel.Process, dir NodeID, name string) (NodeID, error)
	Mkdir(p *kernel.Process, dir NodeID, name string) (NodeID, error)
	Unlink(p *kernel.Process, dir NodeID, name string) error
	Rmdir(p *kernel.Process, dir NodeID, name string) error
	Readdir(p *kernel.Process, dir NodeID) ([]DirEnt, error)
	Read(p *kernel.Process, n NodeID, off int64, buf []byte) (int, error)
	Write(p *kernel.Process, n NodeID, off int64, data []byte) (int, error)
	Truncate(p *kernel.Process, n NodeID, size int64) error
	Rename(p *kernel.Process, odir NodeID, oname string, ndir NodeID, nname string) error
	Sync(p *kernel.Process) error
}

// Device is a character device exposed through the namespace (the
// event monitor's /dev/kernevents). Reads run in kernel mode and
// return up to len(buf) bytes.
type Device interface {
	DevRead(p *kernel.Process, buf []byte) (int, error)
	DevWrite(p *kernel.Process, data []byte) (int, error)
}

// OpCPU is the baseline kernel CPU cost of one VFS operation
// (dispatch, argument validation, inode locking).
const OpCPU = sim.Cycles(350)
