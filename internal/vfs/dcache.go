package vfs

import (
	"repro/internal/kernel"
)

// dkey identifies a dentry: a name within a directory of a mounted
// file system.
type dkey struct {
	fs   FS
	dir  NodeID
	name string
}

// Dcache is the dentry cache. Every lookup takes the global
// DcacheLock, exactly like the Linux dcache the paper instruments:
// "we then added instrumentation for the dentry cache lock,
// dcache_lock, which prevents race conditions in file-system
// name-space operations such as renames" (§3.3).
type Dcache struct {
	// Lock is the global dcache_lock. Its Probe hook is where the
	// event monitor attaches.
	Lock kernel.SpinLock

	entries map[dkey]NodeID

	// Stats.
	Hits, Misses int64
}

// NewDcache creates an empty dentry cache.
func NewDcache() *Dcache {
	return &Dcache{
		Lock:    kernel.SpinLock{Name: "dcache_lock"},
		entries: make(map[dkey]NodeID),
	}
}

// lookup consults the cache under the lock; on a miss it calls the
// file system and caches the result.
func (d *Dcache) lookup(p *kernel.Process, fs FS, dir NodeID, name string) (NodeID, error) {
	d.Lock.Lock(p)
	id, ok := d.entries[dkey{fs, dir, name}]
	d.Lock.Unlock(p)
	if ok {
		d.Hits++
		return id, nil
	}
	d.Misses++
	id, err := fs.Lookup(p, dir, name)
	if err != nil {
		return 0, err
	}
	d.Lock.Lock(p)
	d.entries[dkey{fs, dir, name}] = id
	d.Lock.Unlock(p)
	return id, nil
}

// Insert primes the cache (used after create).
func (d *Dcache) Insert(p *kernel.Process, fs FS, dir NodeID, name string, id NodeID) {
	d.Lock.Lock(p)
	d.entries[dkey{fs, dir, name}] = id
	d.Lock.Unlock(p)
}

// Invalidate removes one dentry (unlink, rmdir, rename source).
func (d *Dcache) Invalidate(p *kernel.Process, fs FS, dir NodeID, name string) {
	d.Lock.Lock(p)
	delete(d.entries, dkey{fs, dir, name})
	d.Lock.Unlock(p)
}

// Len reports the number of cached dentries.
func (d *Dcache) Len() int { return len(d.entries) }
