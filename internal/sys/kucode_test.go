package sys

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kgcc"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/sim"
)

func TestKuLoadCallRoundTrip(t *testing.T) {
	m, k := env()
	const src = `
	int scale(int x) {
		int tab[16];
		int i;
		for (i = 0; i < 16; i++) { tab[i] = i * x; }
		return tab[15];
	}`
	p := run(t, m, k, func(pr *Proc) error {
		id, err := pr.KuLoad(KuSpec{Source: src, Entry: "scale", Checks: kgcc.KcheckOptions()})
		if err != nil {
			return err
		}
		v, err := pr.KuCall(id, 3)
		if err != nil {
			return err
		}
		if v != 45 {
			t.Errorf("ku_call = %d; want 45", v)
		}
		ext, ok := k.KuExt(id)
		if !ok {
			t.Fatal("loaded extension not registered")
		}
		if ext.Calls != 1 {
			t.Errorf("ext.Calls = %d", ext.Calls)
		}
		if ext.Stats.ElidedProven == 0 {
			t.Errorf("kcheck elided nothing at load: %s", ext.Stats)
		}
		if k.Calls[NrKuLoad] != 1 || k.Calls[NrKuCall] != 1 {
			t.Errorf("syscall counts: ku_load %d, ku_call %d", k.Calls[NrKuLoad], k.Calls[NrKuCall])
		}
		return nil
	})
	if _, sysT, _ := p.Times(); sysT == 0 {
		t.Error("kucode execution charged no kernel time")
	}
}

func TestKuLoadRejectsUnsafeUnits(t *testing.T) {
	m, k := env()
	cases := []struct {
		name, src, want string
	}{
		{
			name: "recursion",
			src:  `int main(int n) { if (n) { return main(n - 1); } return 0; }`,
			want: "recursion",
		},
		{
			name: "provable oob",
			src:  `int main() { int a[4]; a[9] = 1; return 0; }`,
			want: "out of bounds",
		},
	}
	run(t, m, k, func(pr *Proc) error {
		for _, tc := range cases {
			id, err := pr.KuLoad(KuSpec{Source: tc.src, Checks: kgcc.KcheckOptions()})
			if err == nil {
				t.Errorf("%s: loaded (id %d); want rejection", tc.name, id)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: diagnostic %q does not mention %q", tc.name, err, tc.want)
			}
		}
		return nil
	})
}

func TestKuCallViolationKillsExtension(t *testing.T) {
	m, k := env()
	// The off-by-one depends on the argument, so no load-time analysis
	// can reject it; the retained runtime check catches it and the
	// extension dies, exactly like a kprobe program.
	const src = `
	int main(int n) {
		int a[4];
		int i;
		for (i = 0; i < n; i++) { a[i] = i; }
		return a[0];
	}`
	run(t, m, k, func(pr *Proc) error {
		id, err := pr.KuLoad(KuSpec{Source: src, Checks: kgcc.KcheckOptions()})
		if err != nil {
			return err
		}
		if _, err := pr.KuCall(id, 4); err != nil {
			t.Fatalf("in-bounds call failed: %v", err)
		}
		if _, err := pr.KuCall(id, 5); !errors.Is(err, kgcc.ErrViolation) {
			t.Fatalf("out-of-bounds call: err = %v; want a kgcc violation", err)
		}
		if _, err := pr.KuCall(id, 4); !errors.Is(err, ErrKuDead) {
			t.Fatalf("call after violation: err = %v; want ErrKuDead", err)
		}
		ext, _ := k.KuExt(id)
		if ext.Err == nil {
			t.Error("extension Err not recorded")
		}
		return nil
	})
}

// TestKuLoadCacheHitSkipsVerification pins the content-hash cache
// contract: reloading byte-identical source (same entry, same check
// options) must hit the module cache, skip the per-instruction
// verification charge, and still produce an extension that computes
// the same results.
func TestKuLoadCacheHitSkipsVerification(t *testing.T) {
	m, k := env()
	const src = `
	int scale(int x) {
		int tab[16];
		int i;
		for (i = 0; i < 16; i++) { tab[i] = i * x; }
		return tab[15];
	}`
	spec := KuSpec{Source: src, Entry: "scale", Checks: kgcc.KcheckOptions()}
	run(t, m, k, func(pr *Proc) error {
		id1, err := pr.KuLoad(spec)
		if err != nil {
			return err
		}
		e1, _ := k.KuExt(id1)
		if e1.CacheHit {
			t.Fatal("first load reported a cache hit")
		}
		id2, err := pr.KuLoad(spec)
		if err != nil {
			return err
		}
		e2, _ := k.KuExt(id2)
		if !e2.CacheHit {
			t.Fatal("second load of identical source missed the cache")
		}
		// The miss paid verification (ProbeVerifyInstr per analyzed
		// instruction) on top of VM setup; the hit must not.
		verify := sim.Cycles(e1.Insns) * m.Costs.ProbeVerifyInstr
		if e1.Cycles < verify {
			t.Fatalf("miss load cost %d below its own verify charge %d", e1.Cycles, verify)
		}
		if e2.Cycles > e1.Cycles-verify {
			t.Fatalf("hit load cost %d; want at most miss cost %d minus verify charge %d",
				e2.Cycles, e1.Cycles, verify)
		}
		// Instrumentation metadata survives the cache.
		if e2.Insns != e1.Insns || e2.Stats != e1.Stats {
			t.Errorf("cached metadata differs: insns %d/%d, stats %v/%v",
				e1.Insns, e2.Insns, e1.Stats, e2.Stats)
		}
		v1, err := pr.KuCall(id1, 7)
		if err != nil {
			return err
		}
		v2, err := pr.KuCall(id2, 7)
		if err != nil {
			return err
		}
		if v1 != v2 || v1 != 105 {
			t.Errorf("ku_call results diverge: %d vs %d (want 105)", v1, v2)
		}
		// Different check options are a different cache key: no hit.
		id3, err := pr.KuLoad(KuSpec{Source: src, Entry: "scale", Checks: kgcc.FullChecks()})
		if err != nil {
			return err
		}
		if e3, _ := k.KuExt(id3); e3.CacheHit {
			t.Error("load with different check options hit the cache")
		}
		return nil
	})
}

func TestKuCallUnknownExtension(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		if _, err := pr.KuCall(42); err == nil {
			t.Error("ku_call on unknown id succeeded")
		}
		return nil
	})
}

// TestKuLoadModuleRejectsRecursion: the structural call-graph check on
// pre-compiled modules is the bytecode analogue of kcheck's recursion
// rejection on source — a self-calling module must not load.
func TestKuLoadModuleRejectsRecursion(t *testing.T) {
	m, k := env()
	rec := &minic.Module{
		SrcInsns: 2,
		Funcs: []*minic.Funcode{{
			Name:    "main",
			NumRegs: 1,
			Code: []minic.VInstr{
				{Op: minic.VCall, Dst: -1, A: 0, B: 0, Imm: 0},
				{Op: minic.VRet, A: -1},
			},
			Pos: make([]minic.Pos, 2),
		}},
	}
	enc := minic.EncodeModule(rec)
	run(t, m, k, func(pr *Proc) error {
		if _, err := pr.KuLoad(KuSpec{Module: enc}); err == nil {
			t.Error("recursive module loaded")
		} else if !strings.Contains(err.Error(), "recursion") {
			t.Errorf("rejection %q does not name the recursion", err)
		}
		return nil
	})
}

// TestKuLoadModuleQuarantine pins the containment story for
// pre-compiled modules: the kernel cannot re-derive KGCC proofs from
// bytecode, so a decoded module runs in a private address space. A
// hostile checkless store can corrupt only its own sandbox — memory
// belonging to source-loaded extensions in the shared kucode space is
// untouched and they keep working.
func TestKuLoadModuleQuarantine(t *testing.T) {
	m, k := env()
	hostile := &minic.Module{
		SrcInsns: 3,
		Funcs: []*minic.Funcode{{
			Name:      "main",
			NumParams: 1,
			ParamRegs: []int32{0},
			NumRegs:   2,
			Code: []minic.VInstr{
				{Op: minic.VConst, Dst: 1, Imm: 0x55},
				{Op: minic.VStore8, Sz: 8, A: 0, B: 1},
				{Op: minic.VRet, A: -1},
			},
			Pos: make([]minic.Pos, 3),
		}},
	}
	enc := minic.EncodeModule(hostile)
	run(t, m, k, func(pr *Proc) error {
		victim, err := pr.KuLoad(KuSpec{Source: `int main() { return 7; }`, Checks: kgcc.KcheckOptions()})
		if err != nil {
			return err
		}
		// Plant a sentinel in the shared kucode space, at an address the
		// hostile module will aim its unchecked store at.
		sentinel, err := k.Ku.as.MapRegion(1, mem.PermRW)
		if err != nil {
			return err
		}
		if err := k.Ku.as.WriteU64(sentinel, 0xA5A5); err != nil {
			return err
		}
		hid, err := pr.KuLoad(KuSpec{Module: enc})
		if err != nil {
			return err
		}
		// The store either faults in the private space or lands there;
		// either way the shared space must be unscathed.
		_, _ = pr.KuCall(hid, int64(sentinel))
		got, err := k.Ku.as.ReadU64(sentinel)
		if err != nil {
			return err
		}
		if got != 0xA5A5 {
			t.Errorf("quarantined module reached the shared kucode space: sentinel = %#x", got)
		}
		if v, err := pr.KuCall(victim); err != nil || v != 7 {
			t.Errorf("victim extension after hostile call: v=%d err=%v", v, err)
		}
		return nil
	})
}

// TestKuLoadModuleEntryNotSkippedByCache pins the cache-key contract:
// the entry name is folded into the module-blob key, so loading the
// same bytes under a different entry re-runs admission (and fails on
// the missing function) instead of hitting the cache.
func TestKuLoadModuleEntryNotSkippedByCache(t *testing.T) {
	m, k := env()
	mod, err := BuildKuModule(KuSpec{Source: `int main() { return 1; }`, Checks: kgcc.FullChecks()})
	if err != nil {
		t.Fatalf("build ku module: %v", err)
	}
	enc := minic.EncodeModule(mod)
	run(t, m, k, func(pr *Proc) error {
		if _, err := pr.KuLoad(KuSpec{Module: enc}); err != nil {
			return err
		}
		if _, err := pr.KuLoad(KuSpec{Module: enc, Entry: "nosuch"}); err == nil {
			t.Error("same module bytes with a bogus entry loaded via cache hit")
		} else if !strings.Contains(err.Error(), "not defined") {
			t.Errorf("rejection %q does not name the missing entry", err)
		}
		return nil
	})
}
