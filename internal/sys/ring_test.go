package sys

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/kgcc"
	"repro/internal/kperf"
	"repro/internal/kring"
	"repro/internal/ktrace"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
)

// NOTE: these helpers run inside the spawned process goroutine, where
// t.Fatal would Goexit without unblocking the scheduler — so they
// return errors and the test goroutine reports them.

// stage copies data into the ring's data area at off (user-side, via
// the shared mapping — no boundary crossing).
func stage(h *RingHandle, off int, data []byte) error {
	v, err := h.View(off, len(data))
	if err != nil {
		return err
	}
	return v.CopyOut(0, data)
}

// reap pops exactly n completions.
func reap(h *RingHandle, n int) ([]kring.CQE, error) {
	out := make([]kring.CQE, 0, n)
	for i := 0; i < n; i++ {
		cqe, _, err := h.Pop()
		if err != nil {
			return nil, fmt.Errorf("pop %d/%d: %w", i, n, err)
		}
		out = append(out, cqe)
	}
	return out, nil
}

// pushAll submits every SQE or fails.
func pushAll(h *RingHandle, es ...kring.SQE) error {
	for i := range es {
		if err := h.Push(&es[i]); err != nil {
			return fmt.Errorf("push %d: %w", i, err)
		}
	}
	return nil
}

func TestRingSetupGeometry(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		for _, bad := range []int{0, 3, kring.MaxEntries * 2} {
			if _, err := pr.RingSetup(bad, 0); !errors.Is(err, vfs.ErrInval) {
				t.Errorf("RingSetup(entries=%d): %v", bad, err)
			}
		}
		if _, err := pr.RingSetup(8, maxRingData+1); !errors.Is(err, vfs.ErrInval) {
			t.Error("oversized data area accepted")
		}
		if _, err := pr.RingEnter(99); !errors.Is(err, ErrBadFD) {
			t.Error("ring_enter on unknown ring succeeded")
		}
		h, err := pr.RingSetup(8, 4096)
		if err != nil {
			return err
		}
		if h.Entries() != 8 || h.DataLen() < 4096 {
			t.Errorf("geometry: %d entries, %d data", h.Entries(), h.DataLen())
		}
		if err := h.Close(); err != nil {
			return err
		}
		if _, err := pr.RingEnter(h.ID()); !errors.Is(err, ErrBadFD) {
			t.Error("ring_enter after close succeeded")
		}
		if k.Calls[NrRingSetup] != 5 || k.Calls[NrRingClose] != 1 {
			t.Errorf("ring syscall counts: setup %d close %d", k.Calls[NrRingSetup], k.Calls[NrRingClose])
		}
		return nil
	})
}

// TestRingBatchFDRel drives a whole create-write-read cycle through
// ring batches: creat, write (FDRel), close (FDRel), then
// open/read/close with relative descriptors — two crossings total —
// and verifies the file contents and counters.
func TestRingBatchFDRel(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		h, err := pr.RingSetup(8, 4096)
		if err != nil {
			return err
		}
		path := "/ring.txt"
		payload := []byte("one crossing, many calls")
		if err := stage(h, 0, []byte(path)); err != nil {
			return err
		}
		if err := stage(h, 64, payload); err != nil {
			return err
		}
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrCreat), DataOff: 0, DataLen: uint32(len(path)), UserTag: 1},
			kring.SQE{Op: uint16(NrWrite), Flags: kring.FlagFDRel, Args: [4]int64{1}, DataOff: 64, DataLen: uint32(len(payload)), UserTag: 2},
			kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{2}, UserTag: 3},
		); err != nil {
			return err
		}
		calls := k.TotalCalls()
		n, err := h.Enter()
		if err != nil {
			return err
		}
		if n != 3 {
			return fmt.Errorf("drain completed %d entries", n)
		}
		if got := k.TotalCalls() - calls; got != 1 {
			t.Errorf("batch of 3 cost %d crossings", got)
		}
		cqes, err := reap(h, 3)
		if err != nil {
			return err
		}
		for i, c := range cqes {
			if c.Err != 0 {
				return fmt.Errorf("cqe %d: errno %d", i, c.Err)
			}
			if c.UserTag != uint64(i+1) {
				t.Errorf("cqe %d: tag %d", i, c.UserTag)
			}
		}
		if cqes[1].Res != int64(len(payload)) || cqes[1].Copied != uint32(len(payload)) {
			t.Errorf("write cqe: %+v", cqes[1])
		}

		// Read it back in a second batch.
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrOpen), DataOff: 0, DataLen: uint32(len(path)), UserTag: 4},
			kring.SQE{Op: uint16(NrRead), Flags: kring.FlagFDRel, Args: [4]int64{1}, DataOff: 1024, DataLen: uint32(len(payload)), UserTag: 5},
			kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{2}, UserTag: 6},
		); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 3 {
			return fmt.Errorf("read batch: %d, %v", n, err)
		}
		cqes, err = reap(h, 3)
		if err != nil {
			return err
		}
		if cqes[1].Res != int64(len(payload)) {
			return fmt.Errorf("read cqe: %+v", cqes[1])
		}
		rv, err := h.View(1024, len(payload))
		if err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := rv.CopyIn(0, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("zero-copy read back %q", got)
		}
		if pr.OpenFDs() != 0 {
			t.Errorf("%d descriptors leaked", pr.OpenFDs())
		}
		if k.RingOps != 6 {
			t.Errorf("RingOps = %d", k.RingOps)
		}
		if k.RingBytes == 0 {
			t.Error("RingBytes = 0")
		}
		return h.Close()
	})
}

// ringOutcome is everything the classic/ring comparison checks.
type ringOutcome struct {
	size  int64
	data  []byte
	stats [2]vfs.Attr
}

// TestRingResultsMatchClassic runs the same operation sequence through
// the classic trap path and through a ring batch on two fresh
// machines, and requires identical file system outcomes.
func TestRingResultsMatchClassic(t *testing.T) {
	msg := []byte("identical bits")

	var classic ringOutcome
	{
		m, k := env()
		run(t, m, k, func(pr *Proc) error {
			fd, err := pr.Creat("/a")
			if err != nil {
				return err
			}
			ub, err := pr.Mmap(64)
			if err != nil {
				return err
			}
			if err := pr.Poke(ub, msg); err != nil {
				return err
			}
			ub.Len = len(msg)
			if _, err := pr.Write(fd, ub); err != nil {
				return err
			}
			if err := pr.Close(fd); err != nil {
				return err
			}
			if classic.stats[0], err = pr.Stat("/a"); err != nil {
				return err
			}
			if err := pr.Rename("/a", "/b"); err != nil {
				return err
			}
			if classic.stats[1], err = pr.Stat("/b"); err != nil {
				return err
			}
			fd, err = pr.Open("/b", ORdonly)
			if err != nil {
				return err
			}
			rb, err := pr.Mmap(64)
			if err != nil {
				return err
			}
			rb.Len = len(msg)
			n, err := pr.Read(fd, rb)
			if err != nil {
				return err
			}
			classic.data, _ = pr.Peek(rb, n)
			classic.size = int64(n)
			return pr.Close(fd)
		})
	}

	var ringed ringOutcome
	{
		m, k := env()
		run(t, m, k, func(pr *Proc) error {
			h, err := pr.RingSetup(16, 4096)
			if err != nil {
				return err
			}
			if err := stage(h, 0, []byte("/a")); err != nil {
				return err
			}
			if err := stage(h, 8, []byte("/b")); err != nil {
				return err
			}
			if err := stage(h, 64, msg); err != nil {
				return err
			}
			// creat, write, close, stat /a -> attr@128, rename /a->/b,
			// stat /b -> attr@256, open, read -> 512, close.
			if err := pushAll(h,
				kring.SQE{Op: uint16(NrCreat), DataOff: 0, DataLen: 2},
				kring.SQE{Op: uint16(NrWrite), Flags: kring.FlagFDRel, Args: [4]int64{1}, DataOff: 64, DataLen: uint32(len(msg))},
				kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{2}},
				kring.SQE{Op: uint16(NrStat), Args: [4]int64{128}, DataOff: 0, DataLen: 2},
				kring.SQE{Op: uint16(NrRename), Args: [4]int64{8, 2}, DataOff: 0, DataLen: 2},
				kring.SQE{Op: uint16(NrStat), Args: [4]int64{256}, DataOff: 8, DataLen: 2},
				kring.SQE{Op: uint16(NrOpen), DataOff: 8, DataLen: 2},
				kring.SQE{Op: uint16(NrRead), Flags: kring.FlagFDRel, Args: [4]int64{1}, DataOff: 512, DataLen: uint32(len(msg))},
				kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{2}},
			); err != nil {
				return err
			}
			n, err := h.Enter()
			if err != nil {
				return err
			}
			if n != 9 {
				return fmt.Errorf("completed %d/9", n)
			}
			cqes, err := reap(h, 9)
			if err != nil {
				return err
			}
			for i, c := range cqes {
				if c.Err != 0 {
					return fmt.Errorf("entry %d: errno %d", i, c.Err)
				}
			}
			ringed.size = cqes[7].Res
			dv, err := h.View(512, int(ringed.size))
			if err != nil {
				return err
			}
			ringed.data = make([]byte, ringed.size)
			if err := dv.CopyIn(0, ringed.data); err != nil {
				return err
			}
			for si, off := range []int{128, 256} {
				av, err := h.View(off, vfs.StatSize)
				if err != nil {
					return err
				}
				sb := make([]byte, vfs.StatSize)
				if err := av.CopyIn(0, sb); err != nil {
					return err
				}
				g := func(o int) uint64 {
					var x uint64
					for i := 0; i < 8; i++ {
						x |= uint64(sb[o+i]) << (8 * i)
					}
					return x
				}
				ringed.stats[si] = vfs.Attr{
					ID: vfs.NodeID(g(0)), Size: int64(g(8)), Nlink: int(g(16)),
					Mode: uint16(g(24)), Type: vfs.FileType(g(32)), Mtime: sim.Cycles(g(40)),
				}
			}
			return h.Close()
		})
	}

	if classic.size != ringed.size || !bytes.Equal(classic.data, ringed.data) {
		t.Errorf("data: classic %q, ring %q", classic.data, ringed.data)
	}
	// Mtime is a virtual-cycle timestamp: the two paths reach the write
	// at different simulated times by design, so it is excluded.
	for i := range classic.stats {
		classic.stats[i].Mtime = 0
		ringed.stats[i].Mtime = 0
	}
	if classic.stats != ringed.stats {
		t.Errorf("stats: classic %+v, ring %+v", classic.stats, ringed.stats)
	}
}

// TestRingErrnoFidelity checks both halves of the error contract: the
// CQE carries the errno code, Pop carries the original Go error.
func TestRingErrnoFidelity(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		h, err := pr.RingSetup(8, 256)
		if err != nil {
			return err
		}
		if err := stage(h, 0, []byte("/ghost")); err != nil {
			return err
		}
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrOpen), DataOff: 0, DataLen: 6, UserTag: 7},
			kring.SQE{Op: uint16(NrGetdents), UserTag: 8},
			kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{50}, UserTag: 9},
		); err != nil {
			return err
		}
		if _, err := h.Enter(); err != nil {
			return err
		}
		cqe, herr, err := h.Pop()
		if err != nil {
			return err
		}
		if cqe.Err != errnoNoEnt || !errors.Is(herr, vfs.ErrNotExist) {
			t.Errorf("open /ghost: errno %d, herr %v", cqe.Err, herr)
		}
		// getdents is classic-only: ENOSYS on the ring.
		cqe, herr, err = h.Pop()
		if err != nil {
			return err
		}
		if cqe.Err != errnoNoSys || !errors.Is(herr, errNoSys) {
			t.Errorf("getdents: errno %d, herr %v", cqe.Err, herr)
		}
		// FDRel backref outside this drain's completions.
		cqe, herr, err = h.Pop()
		if err != nil {
			return err
		}
		if cqe.Err != errnoInval || !errors.Is(herr, vfs.ErrInval) {
			t.Errorf("bad FDRel: errno %d, herr %v", cqe.Err, herr)
		}
		return nil
	})
	_ = k
}

// TestRingSqWrapThroughSyscalls drives many batches through a tiny
// ring so the shared cursors wrap several times under real dispatch.
func TestRingSqWrapThroughSyscalls(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		h, err := pr.RingSetup(4, 0)
		if err != nil {
			return err
		}
		for round := 0; round < 10; round++ {
			for i := 0; i < 4; i++ {
				if err := h.Push(&kring.SQE{Op: uint16(NrGetpid), UserTag: uint64(round*4 + i)}); err != nil {
					return err
				}
			}
			if n, err := h.Enter(); err != nil || n != 4 {
				return fmt.Errorf("round %d: %d, %v", round, n, err)
			}
			cqes, err := reap(h, 4)
			if err != nil {
				return err
			}
			for _, c := range cqes {
				if c.Err != 0 || c.Res != int64(pr.P.PID) {
					return fmt.Errorf("getpid cqe %+v", c)
				}
			}
		}
		if k.RingOps != 40 {
			t.Errorf("RingOps = %d", k.RingOps)
		}
		if k.Calls[NrRingEnter] != 10 {
			t.Errorf("ring_enter crossings = %d", k.Calls[NrRingEnter])
		}
		return nil
	})
}

// TestRingBackpressure fills the CQ without reaping and proves the
// drain stops (leaving SQEs queued) rather than dropping completions.
func TestRingBackpressure(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		h, err := pr.RingSetup(4, 0)
		if err != nil {
			return err
		}
		fill := func() error {
			for i := 0; i < 4; i++ {
				if err := h.Push(&kring.SQE{Op: uint16(NrGetpid)}); err != nil {
					return err
				}
			}
			return nil
		}
		// CQ capacity is 2*entries = 8: two un-reaped batches fill it.
		for b := 0; b < 2; b++ {
			if err := fill(); err != nil {
				return err
			}
			if n, err := h.Enter(); err != nil || n != 4 {
				return fmt.Errorf("batch %d: %d, %v", b, n, err)
			}
		}
		if err := fill(); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 0 {
			return fmt.Errorf("backpressured drain completed %d, %v", n, err)
		}
		if sq, _ := h.rs.ur.SqLen(); sq != 4 {
			return fmt.Errorf("SQ after backpressure: %d entries", sq)
		}
		if ov := h.Overflows(); ov != 0 {
			return fmt.Errorf("backpressure counted as overflow (%d)", ov)
		}
		// Reaping frees CQ space; the queued entries then complete.
		if _, err := reap(h, 8); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 4 {
			return fmt.Errorf("post-reap drain: %d, %v", n, err)
		}
		_, err = reap(h, 4)
		return err
	})
	_ = k
}

// TestRingAnycallSkipAndAbort exercises the skip and abort verdicts:
// the extension sees the previous completion and steers the batch.
func TestRingAnycallSkipAndAbort(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		// Skip (arg) entries when the previous result is positive;
		// abort outright when arg is negative.
		skipper, err := pr.KuLoad(KuSpec{Source: `
		int steer(int pos, int prev, int err, int arg) {
			if (arg < 0) { return 0 - 1; }
			if (prev > 0) { return (arg * 8) + 1; }
			return 0;
		}`, Entry: "steer", Checks: kgcc.KcheckOptions()})
		if err != nil {
			return err
		}

		h, err := pr.RingSetup(8, 0)
		if err != nil {
			return err
		}
		// getpid; anycall(skip 2); two skipped closes; getpid.
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrGetpid), UserTag: 1},
			kring.SQE{Op: kring.OpAnycall, Ext: uint32(skipper), Args: [4]int64{2}, UserTag: 2},
			kring.SQE{Op: uint16(NrClose), Args: [4]int64{77}, UserTag: 3},
			kring.SQE{Op: uint16(NrClose), Args: [4]int64{78}, UserTag: 4},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 5},
		); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 5 {
			return fmt.Errorf("skip drain: %d, %v", n, err)
		}
		cqes, err := reap(h, 5)
		if err != nil {
			return err
		}
		if cqes[1].Err != 0 || cqes[1].Res != 2*8+1 {
			t.Errorf("anycall cqe %+v", cqes[1])
		}
		if cqes[2].Err != errnoCanceled || cqes[3].Err != errnoCanceled {
			t.Errorf("skipped entries: errno %d, %d", cqes[2].Err, cqes[3].Err)
		}
		if cqes[4].Err != 0 || cqes[4].Res != int64(pr.P.PID) {
			t.Errorf("post-skip getpid %+v", cqes[4])
		}

		// Abort: everything after the anycall is canceled.
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrGetpid), UserTag: 10},
			kring.SQE{Op: kring.OpAnycall, Ext: uint32(skipper), Args: [4]int64{-1}, UserTag: 11},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 12},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 13},
		); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 4 {
			return fmt.Errorf("abort drain: %d, %v", n, err)
		}
		cqes, err = reap(h, 4)
		if err != nil {
			return err
		}
		if cqes[1].Res != -1 || cqes[1].Err != 0 {
			t.Errorf("abort verdict cqe %+v", cqes[1])
		}
		if cqes[2].Err != errnoCanceled || cqes[3].Err != errnoCanceled {
			t.Errorf("aborted tail: errno %d, %d", cqes[2].Err, cqes[3].Err)
		}

		// An anycall naming a missing extension fails only its entry.
		if err := pushAll(h,
			kring.SQE{Op: kring.OpAnycall, Ext: 4040, UserTag: 20},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 21},
		); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 2 {
			return fmt.Errorf("missing-ext drain: %d, %v", n, err)
		}
		cqes, err = reap(h, 2)
		if err != nil {
			return err
		}
		if cqes[0].Err != errnoIO {
			t.Errorf("missing ext cqe %+v", cqes[0])
		}
		if cqes[1].Err != 0 {
			t.Errorf("entry after failed anycall: %+v", cqes[1])
		}
		return nil
	})
	_ = k
}

// TestRingAnycallStaging has the extension emit a staged block of
// follow-on SQEs that run ahead of the rest of the queue — the
// "issue more calls without leaving the kernel" contract.
func TestRingAnycallStaging(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		// Verdict kind 2 with operand = data offset of the staged
		// block (which the user pre-wrote at offset 256).
		stager, err := pr.KuLoad(KuSpec{Source: `
		int emit(int pos, int prev, int err, int arg) {
			if (prev > 0) { return (arg * 8) + 2; }
			return 0;
		}`, Entry: "emit", Checks: kgcc.KcheckOptions()})
		if err != nil {
			return err
		}

		h, err := pr.RingSetup(8, 1024)
		if err != nil {
			return err
		}
		// Staged block: [count=2][getpid][getpid].
		blk := make([]byte, 8+2*kring.SQESize)
		blk[0] = 2
		kring.EncodeSQE(blk[8:8+kring.SQESize], &kring.SQE{Op: uint16(NrGetpid), UserTag: 100})
		kring.EncodeSQE(blk[8+kring.SQESize:], &kring.SQE{Op: uint16(NrGetpid), UserTag: 101})
		if err := stage(h, 256, blk); err != nil {
			return err
		}
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrGetpid), UserTag: 1},
			kring.SQE{Op: kring.OpAnycall, Ext: uint32(stager), Args: [4]int64{256}, UserTag: 2},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 3},
		); err != nil {
			return err
		}
		n, err := h.Enter()
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("drain completed %d entries, want 5 (3 pushed + 2 staged)", n)
		}
		cqes, err := reap(h, 5)
		if err != nil {
			return err
		}
		wantTags := []uint64{1, 2, 100, 101, 3} // staged block runs ahead of the SQ
		for i, c := range cqes {
			if c.UserTag != wantTags[i] {
				return fmt.Errorf("completion order: got tag %d at %d, want %d (%+v)", c.UserTag, i, wantTags[i], cqes)
			}
			if c.Err != 0 {
				return fmt.Errorf("cqe %d errno %d", i, c.Err)
			}
		}
		if k.RingOps != 5 {
			t.Errorf("RingOps = %d", k.RingOps)
		}

		// A hostile staged block (absurd count) fails the anycall only.
		blk2 := make([]byte, 8)
		blk2[0] = 0xFF
		blk2[1] = 0xFF
		if err := stage(h, 512, blk2); err != nil {
			return err
		}
		if err := pushAll(h,
			kring.SQE{Op: uint16(NrGetpid), UserTag: 8},
			kring.SQE{Op: kring.OpAnycall, Ext: uint32(stager), Args: [4]int64{512}, UserTag: 9},
			kring.SQE{Op: uint16(NrGetpid), UserTag: 10},
		); err != nil {
			return err
		}
		if n, err := h.Enter(); err != nil || n != 3 {
			return fmt.Errorf("hostile-block drain: %d, %v", n, err)
		}
		cqes, err = reap(h, 3)
		if err != nil {
			return err
		}
		if cqes[1].Err != errnoInval {
			t.Errorf("hostile staged block: cqe %+v", cqes[1])
		}
		if cqes[0].Err != 0 || cqes[2].Err != 0 {
			t.Errorf("neighbors of failed anycall: %+v %+v", cqes[0], cqes[2])
		}
		return nil
	})
}

// TestRingOnOffBitIdentity is the observability gate extended to the
// ring subsystem: an identical ring workload must burn identical
// simulated cycles with kperf+ktrace attached and detached.
func TestRingOnOffBitIdentity(t *testing.T) {
	workload := func(observed bool) (int64, []uint64) {
		var set *kperf.Set
		if observed {
			set = kperf.New(Count(), 0)
		}
		m := kernel.New(kernel.Config{Perf: set})
		fs := memfs.New("root", vfs.NewIOModel(disk.New(disk.IDE7200()), 1<<16))
		k := NewKernel(m, vfs.NewNamespace(fs))
		if observed {
			k.Ktrace = ktrace.NewTracer(&ktrace.Config{}, &m.Clock, m.Perf)
		}
		var tags []uint64
		m.Spawn("ringwork", func(p *kernel.Process) error {
			pr := NewProc(k, p)
			h, err := pr.RingSetup(16, 4096)
			if err != nil {
				return err
			}
			path := "/f"
			if err := stage(h, 0, []byte(path)); err != nil {
				return err
			}
			msg := bytes.Repeat([]byte("x"), 700)
			if err := stage(h, 64, msg); err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				if err := pushAll(h,
					kring.SQE{Op: uint16(NrCreat), DataOff: 0, DataLen: uint32(len(path)), UserTag: uint64(i)*10 + 1},
					kring.SQE{Op: uint16(NrWrite), Flags: kring.FlagFDRel, Args: [4]int64{1}, DataOff: 64, DataLen: uint32(len(msg)), UserTag: uint64(i)*10 + 2},
					kring.SQE{Op: uint16(NrFstat), Flags: kring.FlagFDRel, Args: [4]int64{2, 2048}, UserTag: uint64(i)*10 + 3},
					kring.SQE{Op: uint16(NrClose), Flags: kring.FlagFDRel, Args: [4]int64{3}, UserTag: uint64(i)*10 + 4},
				); err != nil {
					return err
				}
				if _, err := h.Enter(); err != nil {
					return err
				}
				for j := 0; j < 4; j++ {
					cqe, _, err := h.Pop()
					if err != nil {
						return err
					}
					tags = append(tags, cqe.UserTag, uint64(cqe.Err), uint64(cqe.Res))
				}
			}
			return h.Close()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return int64(m.Clock.Now()), tags
	}
	offCycles, offTags := workload(false)
	onCycles, onTags := workload(true)
	if offCycles != onCycles {
		t.Errorf("ring workload cycles differ: observers off %d, on %d", offCycles, onCycles)
	}
	if len(offTags) != len(onTags) {
		t.Fatalf("completion streams differ in length: %d vs %d", len(offTags), len(onTags))
	}
	for i := range offTags {
		if offTags[i] != onTags[i] {
			t.Fatalf("completion stream diverges at %d: %d vs %d", i, offTags[i], onTags[i])
		}
	}
}

// TestRingDrainDeterminism runs the same batch twice on fresh
// machines and requires cycle-exact agreement — the drain loop must
// not leak host nondeterminism (map order, allocator state) into the
// simulation.
func TestRingDrainDeterminism(t *testing.T) {
	once := func() int64 {
		m, k := env()
		run(t, m, k, func(pr *Proc) error {
			h, err := pr.RingSetup(8, 1024)
			if err != nil {
				return err
			}
			if err := stage(h, 0, []byte("/d")); err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				e := kring.SQE{Op: uint16(NrGetpid), UserTag: uint64(i)}
				if i%3 == 0 {
					e.Op = uint16(NrCreat)
					e.DataLen = 2
				}
				if err := h.Push(&e); err != nil {
					return err
				}
			}
			if _, err := h.Enter(); err != nil {
				return err
			}
			if _, err := reap(h, 8); err != nil {
				return err
			}
			return h.Close()
		})
		return int64(m.Clock.Now())
	}
	a, b := once(), once()
	if a != b {
		t.Errorf("drain cycles differ across runs: %d vs %d", a, b)
	}
}

// FuzzRingEnter feeds hostile SQE bytes straight into the submission
// queue and corrupts the shared header (as a malicious process would)
// and requires the drain to complete without panicking, faulting, or
// wedging the machine.
func FuzzRingEnter(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, kring.SQESize*3))
	seed := make([]byte, kring.SQESize)
	kring.EncodeSQE(seed, &kring.SQE{Op: uint16(NrOpen), DataOff: 1 << 30, DataLen: 1 << 31})
	f.Add(append([]byte{}, seed...))
	kring.EncodeSQE(seed, &kring.SQE{Op: kring.OpAnycall, Ext: 0xFFFFFFFF, Args: [4]int64{-1 << 62}})
	f.Add(append(bytes.Repeat(seed, 2), 0x7F))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, k := env()
		m.Spawn("fuzz", func(p *kernel.Process) error {
			pr := NewProc(k, p)
			h, err := pr.RingSetup(8, 512)
			if err != nil {
				return err
			}
			nEntries := len(raw) / kring.SQESize
			if nEntries > 8 {
				nEntries = 8
			}
			for i := 0; i < nEntries; i++ {
				var e kring.SQE
				kring.DecodeSQE(raw[i*kring.SQESize:(i+1)*kring.SQESize], &e)
				if err := h.Push(&e); err != nil {
					return err
				}
			}
			// Corrupt the shared header with a trailing fuzz byte: the
			// drain must tolerate any cursor state.
			if len(raw)%kring.SQESize != 0 {
				hv := pr.P.UAS.View(h.rs.uBase, kring.HdrSize)
				_ = hv.PutU32(8, uint32(raw[len(raw)-1])<<24) // cq_head
			}
			if _, err := h.Enter(); err != nil {
				return err
			}
			// Bounded reap: a corrupted cq_head can make the CQ look
			// ~2^32 deep; spinning on it is the user's own bug.
			for i := 0; i < 2*h.Entries(); i++ {
				if _, _, err := h.Pop(); err != nil {
					break
				}
			}
			_, err = h.Enter()
			return err
		})
		if err := m.Run(); err != nil {
			t.Fatalf("fuzz input crashed the drain: %v", err)
		}
	})
}
