package sys

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Open flags.
const (
	ORdonly = 0
	OWronly = 1 << iota
	ORdwr
	OCreate
	OTrunc
)

// Open opens path, optionally creating or truncating it.
func (pr *Proc) Open(path string, flags int) (int, error) {
	pr.enter(NrOpen, len(path))
	defer pr.exit(NrOpen, len(path), 0)
	a := Args{Path: path, Flags: flags}
	fd, err := bodyOpen(pr, &a)
	return int(fd), err
}

// openInternal is the kernel-side open, shared with Cosy and the
// consolidated calls.
func (pr *Proc) openInternal(path string, flags int) (int, error) {
	if dev, ok := pr.K.NS.LookupDevice(path); ok {
		return pr.installFD(&file{dev: dev, path: path})
	}
	fs, node, err := pr.K.NS.Resolve(pr.P, path)
	if err != nil {
		if flags&OCreate == 0 {
			return -1, err
		}
		pfs, parent, name, perr := pr.K.NS.ResolveParent(pr.P, path)
		if perr != nil {
			return -1, perr
		}
		node, err = pfs.Create(pr.P, parent, name)
		if err != nil {
			return -1, err
		}
		pr.K.NS.Dc.Insert(pr.P, pfs, parent, name, node)
		fs = pfs
	} else if flags&OTrunc != 0 {
		if err := fs.Truncate(pr.P, node, 0); err != nil {
			return -1, err
		}
	}
	return pr.installFD(&file{fs: fs, node: node, path: path})
}

// Creat creates (or truncates) path and opens it for writing.
func (pr *Proc) Creat(path string) (int, error) {
	pr.enter(NrCreat, len(path))
	defer pr.exit(NrCreat, len(path), 0)
	a := Args{Path: path}
	fd, err := bodyCreat(pr, &a)
	return int(fd), err
}

// Close releases a descriptor.
func (pr *Proc) Close(fd int) error {
	pr.enter(NrClose, 0)
	defer pr.exit(NrClose, 0, 0)
	a := Args{Fd: fd}
	_, err := bodyClose(pr, &a)
	return err
}

func (pr *Proc) closeInternal(fd int) error {
	if _, err := pr.file(fd); err != nil {
		return err
	}
	pr.fds[fd] = nil
	return nil
}

// Read reads up to ub.Len bytes at the descriptor's offset into the
// user buffer, returning the count.
func (pr *Proc) Read(fd int, ub UserBuf) (int, error) {
	pr.enter(NrRead, 0)
	a := Args{Fd: fd, Buf: pr.P.UAS.View(ub.Addr, ub.Len)}
	n, err := bodyRead(pr, &a)
	if err != nil {
		pr.exit(NrRead, 0, 0)
		return 0, err
	}
	pr.exit(NrRead, 0, a.Out)
	return int(n), nil
}

// readInternal reads into a kernel buffer (no boundary copy); Cosy's
// entrypoint.
func (pr *Proc) readInternal(fd int, kbuf []byte) (int, error) {
	f, err := pr.file(fd)
	if err != nil {
		return 0, err
	}
	if f.dev != nil {
		return f.dev.DevRead(pr.P, kbuf)
	}
	n, err := f.fs.Read(pr.P, f.node, f.off, kbuf)
	if err != nil {
		return 0, err
	}
	f.off += int64(n)
	return n, nil
}

// Write writes the user buffer at the descriptor's offset.
func (pr *Proc) Write(fd int, ub UserBuf) (int, error) {
	pr.enter(NrWrite, ub.Len)
	a := Args{Fd: fd, Buf: pr.P.UAS.View(ub.Addr, ub.Len)}
	n, err := bodyWrite(pr, &a)
	if !a.CopiedIn {
		pr.exit(NrWrite, 0, 0)
		return 0, err
	}
	pr.exit(NrWrite, ub.Len, 0)
	return int(n), err
}

func (pr *Proc) writeInternal(fd int, data []byte) (int, error) {
	f, err := pr.file(fd)
	if err != nil {
		return 0, err
	}
	if f.dev != nil {
		return f.dev.DevWrite(pr.P, data)
	}
	n, err := f.fs.Write(pr.P, f.node, f.off, data)
	if err != nil {
		return 0, err
	}
	f.off += int64(n)
	return n, nil
}

// Lseek whence values.
const (
	SeekSet = iota
	SeekCur
	SeekEnd
)

// Lseek repositions the descriptor offset.
func (pr *Proc) Lseek(fd int, off int64, whence int) (int64, error) {
	pr.enter(NrLseek, 0)
	defer pr.exit(NrLseek, 0, 0)
	a := Args{Fd: fd, Off: off, Whence: whence}
	return bodyLseek(pr, &a)
}

func (pr *Proc) lseekInternal(fd int, off int64, whence int) (int64, error) {
	f, err := pr.file(fd)
	if err != nil {
		return 0, err
	}
	switch whence {
	case SeekSet:
		f.off = off
	case SeekCur:
		f.off += off
	case SeekEnd:
		a, err := f.fs.Getattr(pr.P, f.node)
		if err != nil {
			return 0, err
		}
		f.off = a.Size + off
	default:
		return 0, vfs.ErrInval
	}
	if f.off < 0 {
		f.off = 0
		return 0, vfs.ErrInval
	}
	return f.off, nil
}

// Stat returns the attributes of path.
func (pr *Proc) Stat(path string) (vfs.Attr, error) {
	pr.enter(NrStat, len(path))
	a := Args{Path: path}
	if _, err := bodyStat(pr, &a); err != nil {
		pr.exit(NrStat, len(path), 0)
		return vfs.Attr{}, err
	}
	pr.exit(NrStat, len(path), a.Out)
	return a.Attr, nil
}

func (pr *Proc) statInternal(path string) (vfs.Attr, error) {
	fs, node, err := pr.K.NS.Resolve(pr.P, path)
	if err != nil {
		return vfs.Attr{}, err
	}
	return fs.Getattr(pr.P, node)
}

// Fstat returns the attributes of an open descriptor.
func (pr *Proc) Fstat(fd int) (vfs.Attr, error) {
	pr.enter(NrFstat, 0)
	a := Args{Fd: fd}
	if _, err := bodyFstat(pr, &a); err != nil {
		pr.exit(NrFstat, 0, 0)
		return vfs.Attr{}, err
	}
	pr.exit(NrFstat, 0, a.Out)
	return a.Attr, nil
}

func (pr *Proc) fstatInternal(fd int) (vfs.Attr, error) {
	f, err := pr.file(fd)
	if err != nil {
		return vfs.Attr{}, err
	}
	return f.fs.Getattr(pr.P, f.node)
}

// Getdents returns all directory entries of an open directory,
// copying the dirent records to user space.
func (pr *Proc) Getdents(fd int) ([]vfs.DirEnt, error) {
	pr.enter(NrGetdents, 0)
	f, err := pr.file(fd)
	if err != nil {
		pr.exit(NrGetdents, 0, 0)
		return nil, err
	}
	ents, err := f.fs.Readdir(pr.P, f.node)
	if err != nil {
		pr.exit(NrGetdents, 0, 0)
		return nil, err
	}
	out := 0
	for _, e := range ents {
		out += e.Bytes()
	}
	pr.exit(NrGetdents, 0, out)
	return ents, nil
}

// Unlink removes a file.
func (pr *Proc) Unlink(path string) error {
	pr.enter(NrUnlink, len(path))
	defer pr.exit(NrUnlink, len(path), 0)
	a := Args{Path: path}
	_, err := bodyUnlink(pr, &a)
	return err
}

func (pr *Proc) unlinkInternal(path string) error {
	fs, parent, name, err := pr.K.NS.ResolveParent(pr.P, path)
	if err != nil {
		return err
	}
	if err := fs.Unlink(pr.P, parent, name); err != nil {
		return err
	}
	pr.K.NS.Dc.Invalidate(pr.P, fs, parent, name)
	return nil
}

// Mkdir creates a directory.
func (pr *Proc) Mkdir(path string) error {
	pr.enter(NrMkdir, len(path))
	defer pr.exit(NrMkdir, len(path), 0)
	a := Args{Path: path}
	_, err := bodyMkdir(pr, &a)
	return err
}

// Rmdir removes an empty directory.
func (pr *Proc) Rmdir(path string) error {
	pr.enter(NrRmdir, len(path))
	defer pr.exit(NrRmdir, len(path), 0)
	a := Args{Path: path}
	_, err := bodyRmdir(pr, &a)
	return err
}

// Rename moves oldPath to newPath (same file system only).
func (pr *Proc) Rename(oldPath, newPath string) error {
	pr.enter(NrRename, len(oldPath)+len(newPath))
	defer pr.exit(NrRename, len(oldPath)+len(newPath), 0)
	a := Args{Path: oldPath, Path2: newPath}
	_, err := bodyRename(pr, &a)
	return err
}

// Fsync flushes the descriptor's file system.
func (pr *Proc) Fsync(fd int) error {
	pr.enter(NrFsync, 0)
	defer pr.exit(NrFsync, 0, 0)
	a := Args{Fd: fd}
	_, err := bodyFsync(pr, &a)
	return err
}

// Getpid is the canonical null syscall, useful for measuring the
// bare crossing cost.
func (pr *Proc) Getpid() int {
	pr.enter(NrGetpid, 0)
	defer pr.exit(NrGetpid, 0, 0)
	a := Args{}
	pid, _ := bodyGetpid(pr, &a)
	return int(pid)
}

// chargeKernelCopy accounts a kernel-internal copy of n bytes.
func (pr *Proc) chargeKernelCopy(n int) {
	pr.P.Charge(sim.Cycles(n) * pr.K.M.Costs.CopyKernByte)
}
