package sys

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/kperf"
	"repro/internal/kprobe"
	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Kernel bundles the machine, the mount namespace, and the syscall
// observers: everything the syscall layer needs.
type Kernel struct {
	M  *kernel.Machine
	NS *vfs.Namespace
	// Calls counts syscall invocations by number.
	Calls [nrCount]int64
	// BytesIn/BytesOut count bytes copied across the user/kernel
	// boundary in each direction (copyin/copyout).
	BytesIn, BytesOut int64

	// RingOps counts SQEs dispatched by ring_enter drain loops; they
	// are deliberately NOT in Calls, so TotalCalls stays a faithful
	// count of boundary crossings. RingBytes counts payload bytes that
	// moved at kernel-copy rate through ring data areas instead of
	// crossing the boundary; RingOverflows counts completions lost (or
	// staged blocks rejected) to a full CQ or pending queue.
	RingOps, RingBytes, RingOverflows int64

	// ringOps are kernel-extension ring op handlers (RegisterRingOp);
	// consulted before the syscall registry during drains.
	ringOps map[uint16]RingOpFunc

	// Probes is the kprobe subsystem (nil on kernels booted without
	// it); enter/exit dispatch its syscall tracepoints.
	Probes *kprobe.Manager

	// Ktrace is the request tracer (nil on kernels booted without
	// it; every method is nil-safe): enter/exit open syscall spans
	// under the current request, and the Cosy/kucode entry points
	// open operations through it.
	Ktrace *ktrace.Tracer

	// Ku is the kucode extension subsystem, created lazily on the
	// first ku_load.
	Ku *kuState

	// hooks fan out every completed syscall to the registered
	// observers (trace recorder, monitors); see AddHook.
	hooks []Hook

	// exitTaps observe syscall completion from kernel context with
	// the span duration, before the kernel->user return. Unlike
	// hooks, a tap runs while the syscall is still open, so charges
	// it makes (e.g. kmon event dispatch) attribute inside the
	// syscall's kperf slot — the seam E9's streaming bridge uses.
	exitTaps []ExitTap
}

// ExitTap observes one completed syscall in kernel context: the
// process, the call, the boundary byte counts, and the span duration
// in cycles.
type ExitTap func(p *kernel.Process, nr Nr, in, out int, dur sim.Cycles)

// AddExitTap registers a kernel-context syscall-completion observer.
func (k *Kernel) AddExitTap(t ExitTap) {
	k.exitTaps = append(k.exitTaps, t)
}

// NewKernel wires a syscall layer over machine and namespace.
func NewKernel(m *kernel.Machine, ns *vfs.Namespace) *Kernel {
	return &Kernel{M: m, NS: ns}
}

// AddHook registers a syscall observer. Hooks run in registration
// order after each syscall completes; any number may be attached
// concurrently (tracer, kperf taps, event monitors).
func (k *Kernel) AddHook(h Hook) {
	k.hooks = append(k.hooks, h)
}

// Hooks reports the number of registered syscall observers.
func (k *Kernel) Hooks() int { return len(k.hooks) }

// TotalCalls reports the total number of system calls served.
func (k *Kernel) TotalCalls() int64 {
	var total int64
	for _, c := range k.Calls {
		total += c
	}
	return total
}

// Errors of the syscall layer.
var (
	ErrBadFD    = errors.New("sys: bad file descriptor")
	ErrTooMany  = errors.New("sys: too many open files")
	ErrNotFound = vfs.ErrNotExist
)

// maxFDs bounds the per-process descriptor table.
const maxFDs = 256

// file is an open file description.
type file struct {
	fs   vfs.FS
	node vfs.NodeID
	off  int64
	path string
	dev  vfs.Device
}

// Proc is a process's view of the syscall layer: its descriptor
// table plus helpers for managing user-space buffers.
type Proc struct {
	K *Kernel
	P *kernel.Process

	fds [maxFDs]*file

	// scratch is the kernel-side staging buffer for the boundary
	// copies in Read/Write, reused across syscalls so the host does
	// not allocate per call; see kbuf.
	scratch []byte

	// lastEnter is the clock at the current syscall's entry; exit
	// taps and the syscall_exit tracepoint use it for span durations.
	lastEnter sim.Cycles

	// rings are the process's mapped krings by id (lookup only, never
	// iterated — map order must not reach the simulation).
	rings      map[int]*ringState
	nextRingID int
}

// kbuf returns an n-byte kernel staging buffer, reusing the
// per-process scratch allocation. The contents are unspecified and
// only valid until the next kbuf call: Read/Write fill the used
// prefix before handing it anywhere. Processes are single-threaded
// and the buffer never escapes a syscall, so one per Proc suffices.
func (pr *Proc) kbuf(n int) []byte {
	if cap(pr.scratch) < n {
		pr.scratch = make([]byte, n)
	}
	return pr.scratch[:n]
}

// NewProc attaches a syscall context to a running process.
func NewProc(k *Kernel, p *kernel.Process) *Proc {
	return &Proc{K: k, P: p}
}

// UserBuf is a buffer in the process's user address space.
type UserBuf struct {
	Addr mem.Addr
	Len  int
}

// Mmap maps n bytes (rounded to pages) of fresh user memory.
func (pr *Proc) Mmap(n int) (UserBuf, error) {
	base, err := pr.P.UAS.MapRegion(mem.PagesFor(n), mem.PermRW)
	if err != nil {
		return UserBuf{}, err
	}
	return UserBuf{Addr: base, Len: n}, nil
}

// Poke fills a user buffer directly (test/workload setup; the user
// program producing the data is part of its modeled compute, so no
// separate charge).
func (pr *Proc) Poke(ub UserBuf, data []byte) error {
	if len(data) > ub.Len {
		return fmt.Errorf("sys: poke of %d bytes into %d-byte buffer", len(data), ub.Len)
	}
	return pr.P.UAS.View(ub.Addr, ub.Len).CopyOut(0, data)
}

// Peek reads a user buffer's contents.
func (pr *Proc) Peek(ub UserBuf, n int) ([]byte, error) {
	if n > ub.Len {
		n = ub.Len
	}
	out := make([]byte, n)
	if err := pr.P.UAS.View(ub.Addr, ub.Len).CopyIn(0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// enter performs the user->kernel transition for syscall nr: user
// dispatch cost, the trap, and copyin accounting for in bytes of
// arguments.
func (pr *Proc) enter(nr Nr, in int) {
	c := &pr.K.M.Costs
	pr.lastEnter = pr.K.M.Clock.Now()
	pr.P.Perf.SyscallEnter(uint16(nr), pr.lastEnter)
	pr.K.Ktrace.SyscallEnter(pr.P.PID, uint16(nr))
	pr.P.Perf.Push(kperf.SubBoundary)
	pr.P.ChargeUser(c.UserDispatch)
	pr.P.EnterKernel()
	pr.P.Charge(c.Trap)
	if in > 0 {
		pr.P.Charge(sim.Cycles(in) * c.CopyUserByte)
		pr.K.BytesIn += int64(in)
	}
	pr.P.Perf.Pop()
	pr.K.Calls[nr]++
	if pr.K.Probes != nil {
		if cost := pr.K.Probes.SyscallEnter(pr.P.PID, int(nr), in); cost > 0 {
			pr.chargeProbe(cost)
		}
	}
}

// chargeProbe bills probe-program execution to the process as kernel
// time tagged with the probe subsystem: observer overhead is itself a
// measured, attributable quantity. The execution slice is also
// recorded as a ktrace exec span under the current request.
func (pr *Proc) chargeProbe(c sim.Cycles) {
	start := pr.K.M.Clock.Now()
	pr.P.Perf.Push(kperf.SubProbe)
	pr.P.Charge(c)
	pr.P.Perf.Pop()
	pr.K.Ktrace.ExecSpan(pr.P.PID, kperf.SubProbe, start, pr.K.M.Clock.Now())
}

// exit performs the kernel->user transition, charging copyout for
// out bytes and notifying the trace hook.
func (pr *Proc) exit(nr Nr, in, out int) {
	c := &pr.K.M.Costs
	if out > 0 {
		pr.P.Perf.Push(kperf.SubBoundary)
		pr.P.Charge(sim.Cycles(out) * c.CopyUserByte)
		pr.P.Perf.Pop()
		pr.K.BytesOut += int64(out)
	}
	dur := pr.K.M.Clock.Now() - pr.lastEnter
	if pr.K.Probes != nil {
		if cost := pr.K.Probes.SyscallExit(pr.P.PID, int(nr), in, out, dur); cost > 0 {
			pr.chargeProbe(cost)
		}
	}
	for _, t := range pr.K.exitTaps {
		t(pr.P, nr, in, out, dur)
	}
	pr.P.ExitKernel()
	pr.P.Perf.SyscallExit(pr.K.M.Clock.Now())
	pr.K.Ktrace.SyscallExit(pr.P.PID)
	for _, h := range pr.K.hooks {
		h.Syscall(pr.P.PID, nr, in, out)
	}
}

// installFD grabs the lowest free descriptor.
func (pr *Proc) installFD(f *file) (int, error) {
	for i := 0; i < maxFDs; i++ {
		if pr.fds[i] == nil {
			pr.fds[i] = f
			return i, nil
		}
	}
	return -1, ErrTooMany
}

func (pr *Proc) file(fd int) (*file, error) {
	if fd < 0 || fd >= maxFDs || pr.fds[fd] == nil {
		return nil, ErrBadFD
	}
	return pr.fds[fd], nil
}

// OpenFDs reports the number of open descriptors (leak tests).
func (pr *Proc) OpenFDs() int {
	n := 0
	for _, f := range pr.fds {
		if f != nil {
			n++
		}
	}
	return n
}
