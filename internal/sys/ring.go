package sys

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/kperf"
	"repro/internal/kring"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// The kring data plane: ring_setup maps a submission/completion ring
// pair into BOTH address spaces (the user process owns the frames;
// the kernel borrows them with mem.MapFrame), ring_enter drains the
// whole submission queue in one boundary crossing, and ring_close
// tears the mapping down. Each SQE names a registered syscall (the
// registry bodies in registry.go), a registered ring op (Cosy
// compounds), or a loaded kucode extension as an "anycall" that
// steers the rest of the batch without leaving the kernel.

// Ring limits.
const (
	// maxRings bounds rings per process.
	maxRings = 16
	// MaxRingData bounds a ring's data area; exported so workloads can
	// size their payload staging against the same ceiling ring_setup
	// enforces.
	MaxRingData = 4 << 20
	maxRingData = MaxRingData
	// maxDrainSteps bounds entries processed per ring_enter, the
	// drain loop's anycall-emission backstop (the Cosy preemption
	// watchdog bounds cycles; this bounds entries).
	maxDrainSteps = 1 << 16
	// pendingCap bounds anycall-staged entries queued in the kernel.
	pendingCap = 2 * kring.MaxEntries
)

// RingOpFunc is a kernel-extension ring op (Cosy registers one for
// NrCosy): it receives the SQE's scalar args and its data-area window
// and is fully responsible for its own cycle charges.
type RingOpFunc func(pr *Proc, args [4]int64, data mem.UserView) (int64, error)

// RegisterRingOp installs fn as the handler for op. Extension ops are
// consulted before the syscall registry, so an extension may also
// shadow a syscall number it wants to reinterpret (Cosy uses its own
// NrCosy slot, which has no registry decoder).
func (k *Kernel) RegisterRingOp(op uint16, fn RingOpFunc) {
	if k.ringOps == nil {
		k.ringOps = make(map[uint16]RingOpFunc)
	}
	k.ringOps[op] = fn
}

// ringState is the kernel side of one mapped ring.
type ringState struct {
	id      int
	entries int
	pages   int
	uBase   mem.Addr
	kBase   mem.Addr
	// ur/kr are the user-space and kernel-space handles over the same
	// frames; cursor state lives in the shared bytes.
	ur, kr *kring.Ring
	// pending is the anycall-staged entry queue, drained ahead of the
	// SQ. It survives across ring_enter calls under backpressure.
	pending []kring.SQE
	// errq mirrors the CQ with the original Go errors, in completion
	// order, so user-side reaping loses no error fidelity to the
	// errno code table.
	errq []error
}

// RingHandle is the user-space side of a mapped ring.
type RingHandle struct {
	pr *Proc
	rs *ringState
}

// RingSetup is the ring_setup system call: allocate a ring of the
// given submission-queue size (power of two, at most 4096) with
// dataBytes of payload area, map it into both address spaces, and
// return the user-side handle.
func (pr *Proc) RingSetup(entries, dataBytes int) (*RingHandle, error) {
	pr.enter(NrRingSetup, 16)
	h, err := pr.ringSetupInternal(entries, dataBytes)
	pr.exit(NrRingSetup, 16, 8)
	return h, err
}

func (pr *Proc) ringSetupInternal(entries, dataBytes int) (*RingHandle, error) {
	if entries < 1 || entries > kring.MaxEntries || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("%w: ring entries %d", vfs.ErrInval, entries)
	}
	if dataBytes < 0 || dataBytes > maxRingData {
		return nil, fmt.Errorf("%w: ring data %d bytes", vfs.ErrInval, dataBytes)
	}
	if len(pr.rings) >= maxRings {
		return nil, ErrTooMany
	}
	n := kring.BytesFor(entries, dataBytes)
	pages := mem.PagesFor(n)
	uas, kas := pr.P.UAS, pr.K.M.KAS

	// The process owns the frames; the kernel maps them Shared, so
	// user unmap is the one real free.
	uBase, err := uas.MapRegion(pages, mem.PermRW)
	if err != nil {
		return nil, err
	}
	kBase := kas.Reserve(pages)
	for i := 0; i < pages; i++ {
		va := uBase + mem.Addr(i*mem.PageSize)
		pte, ok := uas.Lookup(va)
		if !ok {
			return nil, fmt.Errorf("sys: ring_setup: page %#x vanished", uint64(va))
		}
		if err := kas.MapFrame(kBase+mem.Addr(i*mem.PageSize), pte.Frame, mem.PermRW); err != nil {
			return nil, err
		}
	}
	ur, err := kring.Attach(uas.View(uBase, n), entries)
	if err != nil {
		return nil, err
	}
	kr, err := kring.Attach(kas.View(kBase, n), entries)
	if err != nil {
		return nil, err
	}
	rs := &ringState{
		id: pr.nextRingID + 1, entries: entries, pages: pages,
		uBase: uBase, kBase: kBase, ur: ur, kr: kr,
	}
	pr.nextRingID++
	if pr.rings == nil {
		pr.rings = make(map[int]*ringState)
	}
	pr.rings[rs.id] = rs
	return &RingHandle{pr: pr, rs: rs}, nil
}

// RingEnter is the ring_enter system call: one crossing that drains
// the ring's staged and submitted entries, completing each into the
// CQ. It returns the number of entries completed this crossing.
func (pr *Proc) RingEnter(id int) (int64, error) {
	pr.enter(NrRingEnter, 8)
	n, err := pr.ringEnterInternal(id)
	pr.exit(NrRingEnter, 8, 8)
	return n, err
}

func (pr *Proc) ringEnterInternal(id int) (int64, error) {
	rs := pr.rings[id]
	if rs == nil {
		return 0, fmt.Errorf("%w: no ring %d", ErrBadFD, id)
	}
	return pr.ringDrain(rs)
}

// RingClose is the ring_close system call: unmap both sides and drop
// the ring. The kernel's borrowed mapping goes first (Shared PTEs
// free nothing); the user unmap then releases the frames.
func (pr *Proc) RingClose(id int) error {
	pr.enter(NrRingClose, 8)
	err := pr.ringCloseInternal(id)
	pr.exit(NrRingClose, 8, 0)
	return err
}

func (pr *Proc) ringCloseInternal(id int) error {
	rs := pr.rings[id]
	if rs == nil {
		return fmt.Errorf("%w: no ring %d", ErrBadFD, id)
	}
	for i := 0; i < rs.pages; i++ {
		if err := pr.K.M.KAS.Unmap(rs.kBase + mem.Addr(i*mem.PageSize)); err != nil {
			return err
		}
		if err := pr.P.UAS.Unmap(rs.uBase + mem.Addr(i*mem.PageSize)); err != nil {
			return err
		}
	}
	delete(pr.rings, id)
	return nil
}

// drain is the per-ring_enter dispatch context: the completions of
// THIS crossing, which FDRel references and anycalls inspect.
type drain struct {
	pr   *Proc
	rs   *ringState
	cqes []kring.CQE
}

// pathString reads a pathname from the data area window [off, off+n).
func (d *drain) pathString(off, n int64) (string, error) {
	if n < 0 || n > maxRingPath {
		return "", fmt.Errorf("%w: path of %d bytes", vfs.ErrInval, n)
	}
	v, err := d.rs.kr.Data(int(off), int(n))
	if err != nil {
		return "", fmt.Errorf("%w: path window: %v", vfs.ErrInval, err)
	}
	buf := make([]byte, int(n))
	if err := v.CopyIn(0, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// pathArg decodes the SQE's data window as a.Path.
func (d *drain) pathArg(off, n uint32, a *Args) error {
	p, err := d.pathString(int64(off), int64(n))
	if err != nil {
		return err
	}
	a.Path = p
	a.In = len(p)
	return nil
}

// attrWindow points a.Buf at a StatSize window at data offset off;
// off < 0 requests no materialization.
func (d *drain) attrWindow(off int64, a *Args) error {
	if off < 0 {
		return nil
	}
	v, err := d.rs.kr.Data(int(off), vfs.StatSize)
	if err != nil {
		return fmt.Errorf("%w: stat window: %v", vfs.ErrInval, err)
	}
	a.Buf = v
	return nil
}

// complete delivers one CQE plus its mirror error. A full CQ counts
// an overflow and drops the completion (the entry's effects stand;
// its result is lost — exactly io_uring's overflow contract).
func (d *drain) complete(cqe *kring.CQE, herr error) error {
	if err := d.rs.kr.CqPush(cqe); err != nil {
		if err == kring.ErrCQFull {
			d.pr.K.RingOverflows++
			return d.rs.kr.NoteOverflow()
		}
		return err
	}
	d.cqes = append(d.cqes, *cqe)
	d.rs.errq = append(d.rs.errq, herr)
	return nil
}

// resolveFd rewrites a FlagFDRel descriptor argument: Args[0] = b
// names the completion b entries back in this drain, whose Res is the
// descriptor.
func (d *drain) resolveFd(e *kring.SQE, a *Args) error {
	b := e.Args[0]
	if b < 1 || b > int64(len(d.cqes)) {
		return fmt.Errorf("%w: fd reference %d entries back, drain has %d", vfs.ErrInval, b, len(d.cqes))
	}
	ref := d.cqes[int64(len(d.cqes))-b]
	if ref.Err != 0 {
		return fmt.Errorf("%w: fd reference to failed entry (errno %d)", errCanceled, ref.Err)
	}
	a.Fd = int(ref.Res)
	return nil
}

// ringDrain is the kernel's batch dispatch loop: staged (anycall-
// emitted) entries first, then the SQ, stopping on an empty queue,
// CQ backpressure, the step backstop, or an anycall abort. The whole
// drain runs under the ring kperf subsystem with the Cosy preemption
// watchdog armed; every entry gets a ktrace exec span.
func (pr *Proc) ringDrain(rs *ringState) (int64, error) {
	costs := &pr.K.M.Costs
	p := pr.P
	p.Perf.Push(kperf.SubRing)
	defer p.Perf.Pop()

	// Arm the same watchdog Cosy compounds run under: a drain that
	// holds the kernel too long is terminated, batches or not.
	max := costs.MaxKernelCycles
	prev := p.OnPreempt
	p.OnPreempt = func(p *kernel.Process) error {
		if p.KernelStreak() > max {
			return fmt.Errorf("sys: ring drain exceeded maximum kernel time (%v > %v)",
				p.KernelStreak(), max)
		}
		if prev != nil {
			return prev(p)
		}
		return nil
	}
	defer func() { p.OnPreempt = prev }()

	d := &drain{pr: pr, rs: rs}
	var completed int64
	abort := false
	for steps := 0; steps < maxDrainSteps && !abort; steps++ {
		// Backpressure: never pop an entry the CQ cannot complete.
		space, err := rs.kr.CqSpace()
		if err != nil {
			return completed, err
		}
		if space <= 0 {
			// A hostile cq_head can drive the computed space negative;
			// treat it as backpressure, never as room.
			break
		}
		var e kring.SQE
		if len(rs.pending) > 0 {
			e = rs.pending[0]
			rs.pending = rs.pending[1:]
		} else if err := rs.kr.SqPop(&e); err != nil {
			if err == kring.ErrSQEmpty {
				break
			}
			return completed, err
		}

		p.Charge(costs.RingSqe)
		start := pr.K.M.Clock.Now()
		cqe := kring.CQE{UserTag: e.UserTag}
		var herr error
		var skip int64

		switch {
		case e.Op == kring.OpAnycall:
			cqe.Res, skip, abort, herr = pr.ringAnycall(d, &e)
		case pr.K.ringOps[e.Op] != nil:
			data, derr := rs.kr.Data(int(e.DataOff), int(e.DataLen))
			if derr != nil {
				herr = fmt.Errorf("%w: ring-op window: %v", vfs.ErrInval, derr)
			} else {
				cqe.Res, herr = pr.K.ringOps[e.Op](pr, e.Args, data)
			}
		case int(e.Op) < int(nrCount) && sysTable[e.Op].decode != nil:
			var a Args
			herr = sysTable[e.Op].decode(pr, d, &e, &a)
			if herr == nil && e.Flags&kring.FlagFDRel != 0 {
				if !sysTable[e.Op].fdArg {
					herr = fmt.Errorf("%w: FDRel on non-fd op %v", vfs.ErrInval, Nr(e.Op))
				} else {
					herr = d.resolveFd(&e, &a)
				}
			}
			if herr == nil {
				pr.kcall()
				cqe.Res, herr = sysTable[e.Op].body(pr, &a)
				if nb := a.In + a.Out; nb > 0 {
					// Payloads move at kernel copy rate: they ride the
					// shared pages, never the boundary.
					p.Charge(sim.Cycles(nb) * costs.CopyKernByte)
					pr.K.RingBytes += int64(nb)
					cqe.Copied = uint32(nb)
				}
			}
		default:
			herr = fmt.Errorf("%w: op %d", errNoSys, e.Op)
		}

		cqe.Err = errnoOf(herr)
		pr.K.RingOps++
		pr.K.Ktrace.ExecSpan(p.PID, kperf.SubRing, start, pr.K.M.Clock.Now())
		if err := d.complete(&cqe, herr); err != nil {
			return completed, err
		}
		completed++

		// Anycall-directed skips: the next N entries complete as
		// canceled without dispatching. Clamped to the most entries
		// that can legitimately be queued — hostile cursors must not
		// turn the cancel loop into a spin.
		if lim := int64(len(rs.pending) + rs.entries); skip > lim {
			skip = lim
		}
		for ; skip > 0; skip-- {
			var se kring.SQE
			if len(rs.pending) > 0 {
				se = rs.pending[0]
				rs.pending = rs.pending[1:]
			} else if err := rs.kr.SqPop(&se); err != nil {
				break
			}
			if err := d.complete(&kring.CQE{UserTag: se.UserTag, Err: errnoCanceled}, errCanceled); err != nil {
				return completed, err
			}
			completed++
		}
	}

	if abort {
		// Cancel everything still queued: staged entries and the SQ.
		for _, se := range rs.pending {
			if err := d.complete(&kring.CQE{UserTag: se.UserTag, Err: errnoCanceled}, errCanceled); err != nil {
				return completed, err
			}
			completed++
		}
		rs.pending = rs.pending[:0]
		// At most `entries` real SQEs can be queued; the bound keeps a
		// corrupted sq_tail from spinning the cancel sweep.
		for i := 0; i < rs.entries; i++ {
			var se kring.SQE
			if err := rs.kr.SqPop(&se); err != nil {
				break
			}
			if err := d.complete(&kring.CQE{UserTag: se.UserTag, Err: errnoCanceled}, errCanceled); err != nil {
				return completed, err
			}
			completed++
		}
	}
	return completed, nil
}

// ringAnycall runs a kucode extension as an in-kernel control-flow
// step. The extension is invoked as ext(batchPos, prevRes, prevErrno,
// userArg) and its return value v is a verdict:
//
//	v == 0          continue with the next entry
//	v <  0          abort: cancel every remaining entry
//	v&7 == 1        skip (v>>3) following entries (canceled CQEs)
//	v&7 == 2        emit the staged block at data offset (v>>3):
//	                [u64 count][count × 64-byte SQEs], queued ahead
//	                of the SQ
//
// Anything else is EINVAL. A dead or missing extension fails only its
// own entry.
func (pr *Proc) ringAnycall(d *drain, e *kring.SQE) (res int64, skip int64, abort bool, herr error) {
	var prevRes, prevErr int64
	if n := len(d.cqes); n > 0 {
		prevRes = d.cqes[n-1].Res
		prevErr = int64(d.cqes[n-1].Err)
	}
	v, err := pr.kuInvoke(int(e.Ext), int64(len(d.cqes)), prevRes, prevErr, e.Args[0])
	if err != nil {
		return 0, 0, false, err
	}
	switch {
	case v == 0:
		return v, 0, false, nil
	case v < 0:
		return v, 0, true, nil
	}
	operand := v >> 3
	switch v & 7 {
	case 1:
		return v, operand, false, nil
	case 2:
		return v, 0, false, pr.ringStage(d, operand)
	}
	return v, 0, false, fmt.Errorf("%w: anycall verdict %d", vfs.ErrInval, v)
}

// ringStage queues the staged SQE block at data offset off ahead of
// the SQ: [u64 count][count × 64-byte entries]. The block is read at
// kernel copy rate; emissions beyond the pending cap overflow (the
// block is rejected whole).
func (pr *Proc) ringStage(d *drain, off int64) error {
	rs := d.rs
	hdr, err := rs.kr.Data(int(off), 8)
	if err != nil {
		return fmt.Errorf("%w: staged block header: %v", vfs.ErrInval, err)
	}
	count64, err := hdr.U64(0)
	if err != nil {
		return err
	}
	if count64 == 0 || count64 > uint64(rs.entries) {
		return fmt.Errorf("%w: staged block of %d entries", vfs.ErrInval, count64)
	}
	count := int(count64)
	if len(rs.pending)+count > pendingCap {
		pr.K.RingOverflows++
		if err := rs.kr.NoteOverflow(); err != nil {
			return err
		}
		return fmt.Errorf("%w: staged block overflows pending queue", vfs.ErrInval)
	}
	blk, err := rs.kr.Data(int(off)+8, count*kring.SQESize)
	if err != nil {
		return fmt.Errorf("%w: staged block body: %v", vfs.ErrInval, err)
	}
	staged := make([]kring.SQE, count)
	var slot [kring.SQESize]byte
	for i := 0; i < count; i++ {
		if err := blk.CopyIn(i*kring.SQESize, slot[:]); err != nil {
			return err
		}
		kring.DecodeSQE(slot[:], &staged[i])
	}
	pr.P.Charge(sim.Cycles(8+count*kring.SQESize) * pr.K.M.Costs.CopyKernByte)
	pr.K.RingBytes += int64(8 + count*kring.SQESize)
	rs.pending = append(staged, rs.pending...)
	return nil
}

// User-side ring handle operations. Pushing charges the user-mode
// submit cost; the shared-page stores themselves charge through the
// process's own address space like any user memory access.

// Entries reports the submission-queue size.
func (h *RingHandle) Entries() int { return h.rs.entries }

// ID reports the ring id (the ring_enter argument).
func (h *RingHandle) ID() int { return h.rs.id }

// DataLen reports the data-area size.
func (h *RingHandle) DataLen() int { return h.rs.ur.DataLen() }

// Push stages one SQE into the submission queue.
func (h *RingHandle) Push(e *kring.SQE) error {
	h.pr.P.ChargeUser(h.pr.K.M.Costs.RingSubmit)
	return h.rs.ur.SqPush(e)
}

// Enter drains the queue in one crossing (ring_enter).
func (h *RingHandle) Enter() (int64, error) {
	return h.pr.RingEnter(h.rs.id)
}

// Pop reaps the oldest completion, returning the CQE plus the body's
// original Go error (error fidelity across the errno boundary; nil
// for successful entries).
func (h *RingHandle) Pop() (kring.CQE, error, error) {
	var cqe kring.CQE
	if err := h.rs.ur.CqPop(&cqe); err != nil {
		return cqe, nil, err
	}
	var herr error
	if len(h.rs.errq) > 0 {
		herr = h.rs.errq[0]
		h.rs.errq = h.rs.errq[1:]
	}
	return cqe, herr, nil
}

// View opens a user-side window into the data area for payload
// staging and zero-copy result access.
func (h *RingHandle) View(off, n int) (mem.UserView, error) {
	return h.rs.ur.Data(off, n)
}

// Close tears the ring down (ring_close).
func (h *RingHandle) Close() error {
	return h.pr.RingClose(h.rs.id)
}

// Overflows reports the ring's shared cq_overflow counter.
func (h *RingHandle) Overflows() uint32 {
	n, err := h.rs.ur.Overflows()
	if err != nil {
		return 0
	}
	return n
}
