package sys

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
)

// env builds a machine with a memfs root and returns the syscall
// kernel.
func env() (*kernel.Machine, *Kernel) {
	m := kernel.New(kernel.Config{})
	fs := memfs.New("root", vfs.NewIOModel(disk.New(disk.IDE7200()), 1<<16))
	ns := vfs.NewNamespace(fs)
	return m, NewKernel(m, ns)
}

func run(t *testing.T, m *kernel.Machine, k *Kernel, fn func(pr *Proc) error) *kernel.Process {
	t.Helper()
	p := m.Spawn("test", func(p *kernel.Process) error {
		return fn(NewProc(k, p))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpenWriteReadClose(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, err := pr.Creat("/hello.txt")
		if err != nil {
			return err
		}
		ub, err := pr.Mmap(64)
		if err != nil {
			return err
		}
		msg := []byte("syscalls cost cycles")
		if err := pr.Poke(ub, msg); err != nil {
			return err
		}
		ub.Len = len(msg)
		if n, err := pr.Write(fd, ub); err != nil || n != len(msg) {
			t.Errorf("write = %d,%v", n, err)
		}
		if err := pr.Close(fd); err != nil {
			return err
		}

		fd, err = pr.Open("/hello.txt", ORdonly)
		if err != nil {
			return err
		}
		rb, _ := pr.Mmap(64)
		n, err := pr.Read(fd, rb)
		if err != nil {
			return err
		}
		got, _ := pr.Peek(rb, n)
		if !bytes.Equal(got, msg) {
			t.Errorf("read back %q", got)
		}
		return pr.Close(fd)
	})
}

func TestOpenMissing(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		if _, err := pr.Open("/ghost", ORdonly); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestBadFD(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		if _, err := pr.Read(42, UserBuf{}); !errors.Is(err, ErrBadFD) {
			t.Errorf("read err = %v", err)
		}
		if err := pr.Close(-1); !errors.Is(err, ErrBadFD) {
			t.Errorf("close err = %v", err)
		}
		return nil
	})
}

func TestFDReuseLowest(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		a, _ := pr.Creat("/a")
		b, _ := pr.Creat("/b")
		if a != 0 || b != 1 {
			t.Errorf("fds = %d,%d", a, b)
		}
		_ = pr.Close(a)
		c, _ := pr.Creat("/c")
		if c != 0 {
			t.Errorf("reused fd = %d", c)
		}
		if pr.OpenFDs() != 2 {
			t.Errorf("open fds = %d", pr.OpenFDs())
		}
		return nil
	})
}

func TestLseek(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		ub, _ := pr.Mmap(10)
		_ = pr.Poke(ub, []byte("0123456789"))
		_, _ = pr.Write(fd, ub)
		if off, err := pr.Lseek(fd, 2, SeekSet); err != nil || off != 2 {
			t.Errorf("seek set = %d,%v", off, err)
		}
		rb, _ := pr.Mmap(3)
		n, _ := pr.Read(fd, rb)
		got, _ := pr.Peek(rb, n)
		if string(got) != "234" {
			t.Errorf("after seek read %q", got)
		}
		if off, _ := pr.Lseek(fd, -1, SeekEnd); off != 9 {
			t.Errorf("seek end = %d", off)
		}
		if off, _ := pr.Lseek(fd, 1, SeekCur); off != 10 {
			t.Errorf("seek cur = %d", off)
		}
		if _, err := pr.Lseek(fd, 0, 99); !errors.Is(err, vfs.ErrInval) {
			t.Errorf("bad whence = %v", err)
		}
		return nil
	})
}

func TestStatAndFstat(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		ub, _ := pr.Mmap(100)
		_, _ = pr.Write(fd, ub)
		a, err := pr.Stat("/f")
		if err != nil || a.Size != 100 {
			t.Errorf("stat = %+v, %v", a, err)
		}
		fa, err := pr.Fstat(fd)
		if err != nil || fa.ID != a.ID {
			t.Errorf("fstat = %+v, %v", fa, err)
		}
		return nil
	})
}

func TestDirectoryCalls(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		if err := pr.Mkdir("/d"); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			fd, err := pr.Creat(fmt.Sprintf("/d/f%d", i))
			if err != nil {
				return err
			}
			_ = pr.Close(fd)
		}
		fd, err := pr.Open("/d", ORdonly)
		if err != nil {
			return err
		}
		ents, err := pr.Getdents(fd)
		if err != nil || len(ents) != 5 {
			t.Errorf("getdents = %d,%v", len(ents), err)
		}
		_ = pr.Close(fd)
		if err := pr.Unlink("/d/f0"); err != nil {
			return err
		}
		if _, err := pr.Stat("/d/f0"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("stat after unlink = %v", err)
		}
		if err := pr.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Errorf("rmdir non-empty = %v", err)
		}
		for i := 1; i < 5; i++ {
			_ = pr.Unlink(fmt.Sprintf("/d/f%d", i))
		}
		return pr.Rmdir("/d")
	})
}

func TestRenameInvalidatesDcache(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/old")
		_ = pr.Close(fd)
		if _, err := pr.Stat("/old"); err != nil {
			return err
		}
		if err := pr.Rename("/old", "/new"); err != nil {
			return err
		}
		if _, err := pr.Stat("/old"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("old after rename = %v", err)
		}
		if _, err := pr.Stat("/new"); err != nil {
			t.Errorf("new after rename = %v", err)
		}
		return nil
	})
}

func TestSyscallChargesTrapAndDispatch(t *testing.T) {
	m, k := env()
	p := run(t, m, k, func(pr *Proc) error {
		pr.Getpid()
		return nil
	})
	u, s, _ := p.Times()
	if u != m.Costs.UserDispatch {
		t.Fatalf("user = %d, want %d", u, m.Costs.UserDispatch)
	}
	if s != m.Costs.Trap {
		t.Fatalf("sys = %d, want %d", s, m.Costs.Trap)
	}
}

func TestReadChargesCopyout(t *testing.T) {
	m, k := env()
	var small, large sim.Cycles
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		big, _ := pr.Mmap(8192)
		_, _ = pr.Write(fd, big)
		_, _ = pr.Lseek(fd, 0, SeekSet)

		_, sys0, _ := pr.P.Times()
		sb := UserBuf{Addr: big.Addr, Len: 64}
		_, _ = pr.Read(fd, sb)
		_, sys1, _ := pr.P.Times()
		small = sys1 - sys0
		_, _ = pr.Lseek(fd, 0, SeekSet)
		_, _ = pr.Read(fd, big)
		_, sys2, _ := pr.P.Times()
		large = sys2 - sys1
		return nil
	})
	if large <= small {
		t.Fatalf("8K read (%d) not costlier than 64B read (%d)", large, small)
	}
	if diff := large - small; diff < sim.Cycles(8000)*m.Costs.CopyUserByte {
		t.Fatalf("copy cost delta = %d, want at least %d", diff, 8000*int(m.Costs.CopyUserByte))
	}
}

func TestReaddirPlusMatchesReaddirStat(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		_ = pr.Mkdir("/d")
		for i := 0; i < 20; i++ {
			fd, _ := pr.Creat(fmt.Sprintf("/d/f%02d", i))
			ub, _ := pr.Mmap(i + 1)
			_, _ = pr.Write(fd, ub)
			_ = pr.Close(fd)
		}
		// The old way.
		fd, _ := pr.Open("/d", ORdonly)
		ents, err := pr.Getdents(fd)
		if err != nil {
			return err
		}
		_ = pr.Close(fd)
		oldWay := map[string]int64{}
		for _, e := range ents {
			a, err := pr.Stat("/d/" + e.Name)
			if err != nil {
				return err
			}
			oldWay[e.Name] = a.Size
		}
		// The new way.
		plus, err := pr.ReaddirPlus("/d")
		if err != nil {
			return err
		}
		if len(plus) != len(oldWay) {
			t.Errorf("readdirplus = %d entries, want %d", len(plus), len(oldWay))
		}
		for _, na := range plus {
			if oldWay[na.Name] != na.Attr.Size {
				t.Errorf("%s: size %d != %d", na.Name, na.Attr.Size, oldWay[na.Name])
			}
		}
		return nil
	})
}

func TestReaddirPlusFasterAndFewerCalls(t *testing.T) {
	// The core of experiment E1, at small scale: same result, far
	// fewer crossings, less total time.
	const nfiles = 100
	setup := func(pr *Proc) error {
		_ = pr.Mkdir("/d")
		for i := 0; i < nfiles; i++ {
			fd, err := pr.Creat(fmt.Sprintf("/d/file%03d", i))
			if err != nil {
				return err
			}
			_ = pr.Close(fd)
		}
		return nil
	}

	mOld, kOld := env()
	var oldCalls int64
	pOld := run(t, mOld, kOld, func(pr *Proc) error {
		if err := setup(pr); err != nil {
			return err
		}
		start := kOld.TotalCalls()
		fd, _ := pr.Open("/d", ORdonly)
		ents, _ := pr.Getdents(fd)
		_ = pr.Close(fd)
		for _, e := range ents {
			if _, err := pr.Stat("/d/" + e.Name); err != nil {
				return err
			}
		}
		oldCalls = kOld.TotalCalls() - start
		return nil
	})

	mNew, kNew := env()
	var newCalls int64
	pNew := run(t, mNew, kNew, func(pr *Proc) error {
		if err := setup(pr); err != nil {
			return err
		}
		start := kNew.TotalCalls()
		if _, err := pr.ReaddirPlus("/d"); err != nil {
			return err
		}
		newCalls = kNew.TotalCalls() - start
		return nil
	})

	if newCalls != 1 {
		t.Fatalf("readdirplus used %d calls", newCalls)
	}
	if oldCalls != int64(nfiles)+3 {
		t.Fatalf("old way used %d calls", oldCalls)
	}
	uo, so, _ := pOld.Times()
	un, sn, _ := pNew.Times()
	if un >= uo || sn >= so {
		t.Fatalf("readdirplus not cheaper: user %d vs %d, sys %d vs %d", un, uo, sn, so)
	}
}

func TestOpenReadClose(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		ub, _ := pr.Mmap(32)
		_ = pr.Poke(ub, []byte("payload"))
		ub.Len = 7
		_, _ = pr.Write(fd, ub)
		_ = pr.Close(fd)

		before := k.TotalCalls()
		rb, _ := pr.Mmap(32)
		n, err := pr.OpenReadClose("/f", rb)
		if err != nil || n != 7 {
			t.Errorf("orc = %d,%v", n, err)
		}
		got, _ := pr.Peek(rb, n)
		if string(got) != "payload" {
			t.Errorf("got %q", got)
		}
		if k.TotalCalls()-before != 1 {
			t.Errorf("orc used %d calls", k.TotalCalls()-before)
		}
		if pr.OpenFDs() != 0 {
			t.Errorf("fd leaked")
		}
		return nil
	})
}

func TestOpenWriteClose(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		ub, _ := pr.Mmap(16)
		_ = pr.Poke(ub, []byte("written at once!"))
		if n, err := pr.OpenWriteClose("/new", ub); err != nil || n != 16 {
			t.Errorf("owc = %d,%v", n, err)
		}
		a, err := pr.Stat("/new")
		if err != nil || a.Size != 16 {
			t.Errorf("stat = %+v,%v", a, err)
		}
		return nil
	})
}

func TestOpenFstat(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		ub, _ := pr.Mmap(50)
		_, _ = pr.Write(fd, ub)
		_ = pr.Close(fd)

		fd2, a, err := pr.OpenFstat("/f")
		if err != nil || a.Size != 50 {
			t.Errorf("openfstat = %+v,%v", a, err)
		}
		return pr.Close(fd2)
	})
}

func TestOpenFstatMissingClosesNothing(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		if _, _, err := pr.OpenFstat("/ghost"); err == nil {
			t.Error("openfstat of missing succeeded")
		}
		if pr.OpenFDs() != 0 {
			t.Error("fd leaked on error path")
		}
		return nil
	})
}

type recHook struct {
	calls []Nr
	in    int
	out   int
}

func (h *recHook) Syscall(pid int, nr Nr, in, out int) {
	h.calls = append(h.calls, nr)
	h.in += in
	h.out += out
}

func TestHookObservesCalls(t *testing.T) {
	m, k := env()
	h := &recHook{}
	k.AddHook(h)
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		_ = pr.Close(fd)
		_, _ = pr.Stat("/f")
		return nil
	})
	want := []Nr{NrCreat, NrClose, NrStat}
	if fmt.Sprint(h.calls) != fmt.Sprint(want) {
		t.Fatalf("hook saw %v, want %v", h.calls, want)
	}
	if h.out != vfs.StatSize {
		t.Fatalf("hook out bytes = %d", h.out)
	}
}

func TestNrNames(t *testing.T) {
	if NrOpen.String() != "open" || NrReaddirPlus.String() != "readdirplus" {
		t.Fatal("names")
	}
	if NrCosy.String() != "cosy" {
		t.Fatal("cosy name")
	}
	if Nr(200).String() != "sys_?" {
		t.Fatal("unknown nr")
	}
}

func TestTruncateOnOpen(t *testing.T) {
	m, k := env()
	run(t, m, k, func(pr *Proc) error {
		fd, _ := pr.Creat("/f")
		ub, _ := pr.Mmap(10)
		_, _ = pr.Write(fd, ub)
		_ = pr.Close(fd)
		fd2, err := pr.Open("/f", OWronly|OTrunc)
		if err != nil {
			return err
		}
		_ = pr.Close(fd2)
		a, _ := pr.Stat("/f")
		if a.Size != 0 {
			t.Errorf("size after O_TRUNC = %d", a.Size)
		}
		return nil
	})
}
