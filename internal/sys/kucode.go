package sys

import (
	"errors"
	"fmt"

	"repro/internal/kcheck"
	"repro/internal/kernel"
	"repro/internal/kgcc"
	"repro/internal/kperf"
	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/sim"
)

// ErrKuDead is returned when calling an extension that was killed by
// a runtime violation.
var ErrKuDead = errors.New("sys: kucode extension killed by a runtime violation")

// KuSpec is a ku_load request: the paper's "user-level code in the
// kernel". The source is compiled, statically analyzed with kcheck,
// and KGCC-instrumented inside the kernel; Checks selects which
// check-elimination layers the instrumentation applies (FullChecks
// for plain BCC, KcheckOptions for proof-based elision — E10 measures
// the difference).
type KuSpec struct {
	Source string
	// Entry is the function KuCall invokes; empty selects "main".
	Entry string
	// Checks are the KGCC instrumentation options.
	Checks kgcc.Options
	// Module, when non-empty, is an encoded pre-compiled module
	// (minic.EncodeModule output) loaded instead of compiling Source.
	// The kernel cannot re-derive kcheck's safety proofs from
	// bytecode (an elided check simply does not exist in the
	// artifact), so a pre-compiled extension is quarantined: it runs
	// in its own private address space rather than the shared kucode
	// space, its call graph is structurally checked for recursion,
	// and whatever check opcodes it does carry still run against its
	// object map. A module without checks can therefore corrupt only
	// itself — an unchecked store lands in (or faults in) its private
	// space and at worst kills the extension.
	Module []byte
}

// KuExt is one loaded kucode extension.
type KuExt struct {
	ID    int
	Entry string
	// Insns is the pre-instrumentation instruction count.
	Insns int
	// Stats and Report describe what instrumentation did: how many
	// checks were inserted and how many each elimination layer elided.
	Stats  kgcc.Stats
	Report *kgcc.ElisionReport
	// Calls counts invocations; Cycles accumulates their in-kernel
	// cost.
	Calls  int64
	Cycles sim.Cycles
	// Err is the first runtime violation; like a kprobe program, an
	// extension that trips a check is dead and never runs again.
	Err error
	// CacheHit reports that ku_load found this program in the module
	// cache and skipped compilation, analysis, and the verification
	// charge.
	CacheHit bool

	vm *minic.VM
	km *kgcc.Map
	// entryIdx is Entry resolved to a module function index at load
	// time; ku_call dispatches by index, skipping the name lookup.
	entryIdx int
	dead     bool
}

// ChecksRun reports the dynamic runtime checks this extension has
// executed (bounds lookups plus pointer-arithmetic validations).
func (e *KuExt) ChecksRun() int64 { return e.km.Checks + e.km.ArithOps }

// kuState is the kernel's kucode subsystem: the registry and the
// kernel address space shared by source-admitted extensions, created
// on first ku_load (quarantined module-admitted extensions get
// private spaces in load instead).
type kuState struct {
	as      *mem.AddressSpace
	pending sim.Cycles
	exts    map[int]*KuExt
	nextID  int
	// cache holds admitted modules by content hash, along with the
	// instrumentation metadata ku_load reports, so loading the same
	// program twice compiles, analyzes, and verifies once.
	cache     map[minic.CacheKey]*kuCached
	cacheHits int64
}

// kuCached is one admitted program: the compiled module plus the
// load-time metadata that must survive a cache hit.
type kuCached struct {
	mod   *minic.Module
	insns int
	stats kgcc.Stats
	rep   *kgcc.ElisionReport
	// quarantine marks a module admitted from pre-compiled bytes: the
	// kernel could not run its own kcheck/instrumentation over it, so
	// every extension created from it gets a private address space
	// instead of the shared kucode space (see KuSpec.Module).
	quarantine bool
}

func (k *Kernel) ku() *kuState {
	if k.Ku == nil {
		ku := &kuState{
			exts:   make(map[int]*KuExt),
			nextID: 1,
			cache:  make(map[minic.CacheKey]*kuCached),
		}
		ku.as = mem.NewAddressSpace("kucode", k.M.Phys, &k.M.Costs)
		ku.as.Charge = func(c sim.Cycles) { ku.pending += c }
		k.Ku = ku
	}
	return k.Ku
}

// KuExt returns the loaded extension with the given id.
func (k *Kernel) KuExt(id int) (*KuExt, bool) {
	if k.Ku == nil {
		return nil, false
	}
	e, ok := k.Ku.exts[id]
	return e, ok
}

// chargeKu bills kucode work to the process as kernel time tagged
// with the kucode subsystem, recording the slice as a ktrace exec
// span under the current request.
func (pr *Proc) chargeKu(c sim.Cycles) {
	start := pr.K.M.Clock.Now()
	pr.P.Perf.Push(kperf.SubKu)
	pr.P.Charge(c)
	pr.P.Perf.Pop()
	pr.K.Ktrace.ExecSpan(pr.P.PID, kperf.SubKu, start, pr.K.M.Clock.Now())
}

// KuLoad is the ku_load system call: copy the extension source in,
// compile + analyze + instrument it kernel-side, and install it. Load
// time charges a per-instruction static-analysis cost (the same rate
// the kprobe verifier charges) plus the interpreter setup; it is paid
// once, never on the call path.
//
// Loading rejects extensions the kcheck unit analysis proves unsafe
// to host: recursive call cycles (unbounded kernel stack) and
// accesses that are out of bounds on every execution. Everything else
// is allowed in — the KGCC instrumentation is the runtime backstop,
// exactly the layering the paper prescribes ("static analysis should
// be used to reduce runtime checking").
func (pr *Proc) KuLoad(spec KuSpec) (int, error) {
	in := len(spec.Source) + len(spec.Entry) + 8
	pr.enter(NrKuLoad, in)
	id, cost, err := pr.K.ku().load(pr.K, spec)
	if cost > 0 {
		pr.chargeKu(cost)
	}
	pr.exit(NrKuLoad, in, 8)
	if err != nil {
		return -1, err
	}
	return id, nil
}

func (ku *kuState) load(k *Kernel, spec KuSpec) (int, sim.Cycles, error) {
	entry := spec.Entry
	if entry == "" {
		entry = "main"
	}

	key := KuSpecKey(spec)
	cached, hit := ku.cache[key]
	if hit {
		ku.cacheHits++
	} else {
		var err error
		cached, err = admitKu(spec, entry)
		if err != nil {
			// Admission work was done (and charged by the caller via the
			// returned cost) even though the program was rejected;
			// rejections are not cached.
			return -1, sim.Cycles(cached.insns) * k.M.Costs.ProbeVerifyInstr, err
		}
		ku.cache[key] = cached
	}

	ku.pending = 0
	as := ku.as
	if cached.quarantine {
		// Pre-compiled bytecode carries no proofs the kernel can
		// re-check, so it never shares an address space with other
		// extensions: each load gets a fresh private space whose
		// memory costs still land in the kucode charge.
		as = mem.NewAddressSpace("kucode-ext", k.M.Phys, &k.M.Costs)
		as.Charge = func(c sim.Cycles) { ku.pending += c }
	}
	vm, err := minic.NewVM(as, cached.mod)
	if err != nil {
		ku.pending = 0
		return -1, 0, fmt.Errorf("sys: ku_load: %w", err)
	}
	vm.PerInstr = k.M.Costs.ProbeInstr
	vm.Charge = func(c sim.Cycles) { ku.pending += c }
	km := kgcc.NewMap(&k.M.Costs, func(c sim.Cycles) { ku.pending += c })
	kgcc.Attach(vm, km)

	e := &KuExt{
		ID:       ku.nextID,
		Entry:    entry,
		Insns:    cached.insns,
		Stats:    cached.stats,
		Report:   cached.rep,
		CacheHit: hit,
		vm:       vm,
		km:       km,
		entryIdx: cached.mod.FnIndex(entry),
	}
	ku.nextID++
	ku.exts[e.ID] = e

	// A cache hit pays only VM setup: the verification charge covers
	// admitting program content the kernel has already admitted.
	cost := ku.pending
	if !hit {
		cost += sim.Cycles(cached.insns) * k.M.Costs.ProbeVerifyInstr
	}
	ku.pending = 0
	e.Cycles += cost
	return e.ID, cost, nil
}

// KuSpecKey derives the content-hash cache key for a ku_load spec:
// entry plus module bytes when pre-compiled, otherwise a hash over
// entry, source text, and the check options (different elision layers
// produce different bytecode, so they are different modules). The
// entry is part of the key in both forms because a cache hit skips
// admission, and admission verifies the entry against the content —
// the same bytes under a different entry are a different admission.
func KuSpecKey(spec KuSpec) minic.CacheKey {
	entry := spec.Entry
	if entry == "" {
		entry = "main"
	}
	if len(spec.Module) > 0 {
		return minic.HashParts("kucode-module-v1", entry, string(spec.Module))
	}
	return minic.HashParts("kucode-v1", entry, spec.Source, spec.Checks.CacheString())
}

// BuildKuModule runs the ku_load admission pipeline host-side —
// compile, kcheck safety analysis, KGCC instrumentation, bytecode
// compilation — and returns the module the kernel would cache, so
// user space (kucode -emit) can pre-compile extensions and ship the
// encoded artifact.
func BuildKuModule(spec KuSpec) (*minic.Module, error) {
	entry := spec.Entry
	if entry == "" {
		entry = "main"
	}
	cached, err := admitKu(spec, entry)
	if err != nil {
		return nil, err
	}
	return cached.mod, nil
}

// admitKu runs the admission pipeline on one spec: compile (or
// decode), reject what the kcheck unit analysis proves unsafe to
// host, instrument, and compile to bytecode. On rejection the
// returned kuCached still carries the analyzed instruction count so
// the caller can charge for the analysis work.
//
// The two branches mirror the two safety stories. Source admission
// runs the kernel's own analysis, so its rejections (recursion,
// provable oob) and its elision proofs are trusted, and the
// extension may share the kucode address space. Module admission
// gets opaque bytecode: the decode is defensively validated, the
// unbounded-kernel-stack rejection is re-derived structurally (a
// call-graph cycle is visible in bytecode even if nothing else is),
// and everything the kernel cannot re-prove is answered by
// quarantine — the extension runs in a private address space where
// an unchecked access can only hurt itself.
func admitKu(spec KuSpec, entry string) (*kuCached, error) {
	if len(spec.Module) > 0 {
		mod, err := minic.DecodeModule(spec.Module)
		if err != nil {
			return &kuCached{}, fmt.Errorf("sys: ku_load: %w", err)
		}
		if mod.Fn(entry) == nil {
			return &kuCached{}, fmt.Errorf("sys: ku_load: entry function %q not defined", entry)
		}
		if cyc := moduleCallCycle(mod); cyc != "" {
			return &kuCached{}, fmt.Errorf("sys: ku_load rejected: pre-compiled module: recursion through %q (unbounded kernel stack)", cyc)
		}
		return &kuCached{mod: mod, insns: mod.SrcInsns, quarantine: true}, nil
	}
	unit, err := minic.CompileSource(spec.Source)
	if err != nil {
		return &kuCached{}, fmt.Errorf("sys: ku_load compile: %w", err)
	}
	if unit.Fn(entry) == nil {
		return &kuCached{}, fmt.Errorf("sys: ku_load: entry function %q not defined", entry)
	}
	insns := 0
	for _, name := range unit.Order {
		minic.Optimize(unit.Fns[name])
		insns += len(unit.Fns[name].Code)
	}
	uf := kcheck.AnalyzeUnit(unit)
	for _, w := range uf.Warnings {
		if w.Code == "recursion" || w.Code == "oob" {
			return &kuCached{insns: insns}, fmt.Errorf("sys: ku_load rejected: %s", w)
		}
	}
	// The unit is already optimized above; Instrument per function so
	// InstrumentUnitReport's second Optimize pass is a no-op either way.
	stats, rep := kgcc.InstrumentUnitReport(unit, spec.Checks)
	mod, err := minic.CompileUnit(unit)
	if err != nil {
		return &kuCached{insns: insns}, fmt.Errorf("sys: ku_load: %w", err)
	}
	mod.SrcInsns = insns
	mod.Key = KuSpecKey(spec)
	return &kuCached{mod: mod, insns: insns, stats: stats, rep: rep}, nil
}

// moduleCallCycle detects recursion structurally on bytecode: it
// returns the name of a function on a unit-internal call cycle, or ""
// when the module's call graph is acyclic. This is the module-branch
// analogue of the kcheck recursion rejection the source branch runs —
// the one unit-level safety property that is still fully visible in
// compiled code.
func moduleCallCycle(m *minic.Module) string {
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // fully explored
	)
	color := make([]uint8, len(m.Funcs))
	var cyc string
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = grey
		for pc := range m.Funcs[i].Code {
			in := &m.Funcs[i].Code[pc]
			if in.Op != minic.VCall || in.Imm < 0 {
				continue
			}
			j := int(in.Imm)
			if color[j] == grey {
				cyc = m.Funcs[j].Name
				return true
			}
			if color[j] == white && visit(j) {
				return true
			}
		}
		color[i] = black
		return false
	}
	for i := range m.Funcs {
		if color[i] == white && visit(i) {
			return cyc
		}
	}
	return ""
}

// KuCall is the ku_call system call: invoke extension id's entry
// point with the given arguments in a single crossing. The extension
// runs in kernel mode at interpreter speed plus whatever runtime
// checks survived elision; its whole cost lands in the kucode kperf
// subsystem. A runtime violation kills the extension and returns the
// violation to the caller.
func (pr *Proc) KuCall(id int, args ...int64) (int64, error) {
	in := 8 + 8*len(args)
	pr.K.Ktrace.BeginOp(pr.P.PID, ktrace.OpKuCall)
	defer pr.K.Ktrace.EndOp(pr.P.PID)
	pr.enter(NrKuCall, in)
	ret, err := pr.kuInvoke(id, args...)
	pr.exit(NrKuCall, in, 8)
	if err != nil {
		return 0, err
	}
	return ret, nil
}

// kuInvoke is the in-kernel core of ku_call: run extension id's entry
// point and charge its accumulated interpreter cost. The ku_call trap
// wraps it; ring drains invoke it directly for anycall entries, so an
// extension costs the same whether it was reached by trap or by ring.
func (pr *Proc) kuInvoke(id int, args ...int64) (int64, error) {
	var ret int64
	var err error
	ku := pr.K.Ku
	e := (*KuExt)(nil)
	if ku != nil {
		e = ku.exts[id]
	}
	switch {
	case e == nil:
		err = fmt.Errorf("sys: ku_call: no extension %d", id)
	case e.dead:
		err = ErrKuDead
	default:
		ku.pending = 0
		e.vm.Steps = 0
		if e.entryIdx >= 0 {
			ret, err = e.vm.CallIndex(e.entryIdx, args...)
		} else {
			ret, err = e.vm.Call(e.Entry, args...)
		}
		if err != nil {
			e.Err = err
			e.dead = true
			pr.K.M.FlightEvent(kernel.FlightKuDead,
				fmt.Sprintf("ext %d (%s): %v", id, e.Entry, err))
		}
		e.Calls++
		cost := ku.pending
		ku.pending = 0
		e.Cycles += cost
		if cost > 0 {
			pr.chargeKu(cost)
		}
	}
	return ret, err
}
