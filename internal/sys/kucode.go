package sys

import (
	"errors"
	"fmt"

	"repro/internal/kcheck"
	"repro/internal/kgcc"
	"repro/internal/kperf"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/sim"
)

// ErrKuDead is returned when calling an extension that was killed by
// a runtime violation.
var ErrKuDead = errors.New("sys: kucode extension killed by a runtime violation")

// KuSpec is a ku_load request: the paper's "user-level code in the
// kernel". The source is compiled, statically analyzed with kcheck,
// and KGCC-instrumented inside the kernel; Checks selects which
// check-elimination layers the instrumentation applies (FullChecks
// for plain BCC, KcheckOptions for proof-based elision — E10 measures
// the difference).
type KuSpec struct {
	Source string
	// Entry is the function KuCall invokes; empty selects "main".
	Entry string
	// Checks are the KGCC instrumentation options.
	Checks kgcc.Options
}

// KuExt is one loaded kucode extension.
type KuExt struct {
	ID    int
	Entry string
	// Insns is the pre-instrumentation instruction count.
	Insns int
	// Stats and Report describe what instrumentation did: how many
	// checks were inserted and how many each elimination layer elided.
	Stats  kgcc.Stats
	Report *kgcc.ElisionReport
	// Calls counts invocations; Cycles accumulates their in-kernel
	// cost.
	Calls  int64
	Cycles sim.Cycles
	// Err is the first runtime violation; like a kprobe program, an
	// extension that trips a check is dead and never runs again.
	Err error

	ip   *minic.Interp
	km   *kgcc.Map
	dead bool
}

// ChecksRun reports the dynamic runtime checks this extension has
// executed (bounds lookups plus pointer-arithmetic validations).
func (e *KuExt) ChecksRun() int64 { return e.km.Checks + e.km.ArithOps }

// kuState is the kernel's kucode subsystem: the extensions' shared
// kernel address space and the registry, created on first ku_load.
type kuState struct {
	as      *mem.AddressSpace
	pending sim.Cycles
	exts    map[int]*KuExt
	nextID  int
}

func (k *Kernel) ku() *kuState {
	if k.Ku == nil {
		ku := &kuState{exts: make(map[int]*KuExt), nextID: 1}
		ku.as = mem.NewAddressSpace("kucode", k.M.Phys, &k.M.Costs)
		ku.as.Charge = func(c sim.Cycles) { ku.pending += c }
		k.Ku = ku
	}
	return k.Ku
}

// KuExt returns the loaded extension with the given id.
func (k *Kernel) KuExt(id int) (*KuExt, bool) {
	if k.Ku == nil {
		return nil, false
	}
	e, ok := k.Ku.exts[id]
	return e, ok
}

// chargeKu bills kucode work to the process as kernel time tagged
// with the kucode subsystem.
func (pr *Proc) chargeKu(c sim.Cycles) {
	pr.P.Perf.Push(kperf.SubKu)
	pr.P.Charge(c)
	pr.P.Perf.Pop()
}

// KuLoad is the ku_load system call: copy the extension source in,
// compile + analyze + instrument it kernel-side, and install it. Load
// time charges a per-instruction static-analysis cost (the same rate
// the kprobe verifier charges) plus the interpreter setup; it is paid
// once, never on the call path.
//
// Loading rejects extensions the kcheck unit analysis proves unsafe
// to host: recursive call cycles (unbounded kernel stack) and
// accesses that are out of bounds on every execution. Everything else
// is allowed in — the KGCC instrumentation is the runtime backstop,
// exactly the layering the paper prescribes ("static analysis should
// be used to reduce runtime checking").
func (pr *Proc) KuLoad(spec KuSpec) (int, error) {
	in := len(spec.Source) + len(spec.Entry) + 8
	pr.enter(NrKuLoad, in)
	id, cost, err := pr.K.ku().load(pr.K, spec)
	if cost > 0 {
		pr.chargeKu(cost)
	}
	pr.exit(NrKuLoad, in, 8)
	if err != nil {
		return -1, err
	}
	return id, nil
}

func (ku *kuState) load(k *Kernel, spec KuSpec) (int, sim.Cycles, error) {
	entry := spec.Entry
	if entry == "" {
		entry = "main"
	}
	unit, err := minic.CompileSource(spec.Source)
	if err != nil {
		return -1, 0, fmt.Errorf("sys: ku_load compile: %w", err)
	}
	if unit.Fn(entry) == nil {
		return -1, 0, fmt.Errorf("sys: ku_load: entry function %q not defined", entry)
	}
	insns := 0
	for _, name := range unit.Order {
		minic.Optimize(unit.Fns[name])
		insns += len(unit.Fns[name].Code)
	}
	uf := kcheck.AnalyzeUnit(unit)
	for _, w := range uf.Warnings {
		if w.Code == "recursion" || w.Code == "oob" {
			return -1, sim.Cycles(insns) * k.M.Costs.ProbeVerifyInstr,
				fmt.Errorf("sys: ku_load rejected: %s", w)
		}
	}
	// The unit is already optimized above; Instrument per function so
	// InstrumentUnitReport's second Optimize pass is a no-op either way.
	stats, rep := kgcc.InstrumentUnitReport(unit, spec.Checks)

	ku.pending = 0
	ip, err := minic.NewInterp(ku.as, unit)
	if err != nil {
		ku.pending = 0
		return -1, 0, fmt.Errorf("sys: ku_load: %w", err)
	}
	ip.PerInstr = k.M.Costs.ProbeInstr
	ip.Charge = func(c sim.Cycles) { ku.pending += c }
	km := kgcc.NewMap(&k.M.Costs, func(c sim.Cycles) { ku.pending += c })
	kgcc.Attach(ip, km)

	e := &KuExt{
		ID:     ku.nextID,
		Entry:  entry,
		Insns:  insns,
		Stats:  stats,
		Report: rep,
		ip:     ip,
		km:     km,
	}
	ku.nextID++
	ku.exts[e.ID] = e

	cost := ku.pending + sim.Cycles(insns)*k.M.Costs.ProbeVerifyInstr
	ku.pending = 0
	e.Cycles += cost
	return e.ID, cost, nil
}

// KuCall is the ku_call system call: invoke extension id's entry
// point with the given arguments in a single crossing. The extension
// runs in kernel mode at interpreter speed plus whatever runtime
// checks survived elision; its whole cost lands in the kucode kperf
// subsystem. A runtime violation kills the extension and returns the
// violation to the caller.
func (pr *Proc) KuCall(id int, args ...int64) (int64, error) {
	in := 8 + 8*len(args)
	pr.enter(NrKuCall, in)
	var ret int64
	var err error
	ku := pr.K.Ku
	e := (*KuExt)(nil)
	if ku != nil {
		e = ku.exts[id]
	}
	switch {
	case e == nil:
		err = fmt.Errorf("sys: ku_call: no extension %d", id)
	case e.dead:
		err = ErrKuDead
	default:
		ku.pending = 0
		e.ip.Steps = 0
		ret, err = e.ip.Call(e.Entry, args...)
		if err != nil {
			e.Err = err
			e.dead = true
		}
		e.Calls++
		cost := ku.pending
		ku.pending = 0
		e.Cycles += cost
		if cost > 0 {
			pr.chargeKu(cost)
		}
	}
	pr.exit(NrKuCall, in, 8)
	if err != nil {
		return 0, err
	}
	return ret, nil
}
