package sys

import (
	"repro/internal/vfs"
)

// This file implements the paper's consolidated system calls (§2.2):
// new kernel entry points replacing frequently-observed sequences.
// "The main savings for the first three combinations would be the
// reduced number of context switches. The readdirplus system call ...
// combines readdir with multiple stat calls. Here we save on both
// context switches and data copies."

// NameAttr is one readdirplus result record: a name and its full
// stat information.
type NameAttr struct {
	Name string
	Attr vfs.Attr
}

// Bytes is the serialized size copied to user space.
func (na NameAttr) Bytes() int { return vfs.DirEntFixed + len(na.Name) + vfs.StatSize }

// ReaddirPlus returns the names and attributes of every entry in the
// directory at path in a single crossing. The kernel walks the
// directory and stats each entry internally: the per-file trap and
// the duplicate name copy (user copies the name back in for each
// stat) are both eliminated.
func (pr *Proc) ReaddirPlus(path string) ([]NameAttr, error) {
	pr.enter(NrReaddirPlus, len(path))
	fs, dir, err := pr.K.NS.Resolve(pr.P, path)
	if err != nil {
		pr.exit(NrReaddirPlus, len(path), 0)
		return nil, err
	}
	ents, err := fs.Readdir(pr.P, dir)
	if err != nil {
		pr.exit(NrReaddirPlus, len(path), 0)
		return nil, err
	}
	out := make([]NameAttr, 0, len(ents))
	bytes := 0
	for _, e := range ents {
		a, err := fs.Getattr(pr.P, e.ID)
		if err != nil {
			continue // entry raced away; skip, as NFSv3 readdirplus does
		}
		na := NameAttr{Name: e.Name, Attr: a}
		out = append(out, na)
		bytes += na.Bytes()
	}
	pr.exit(NrReaddirPlus, len(path), bytes)
	return out, nil
}

// OpenReadClose opens path, reads up to ub.Len bytes from offset 0
// into the user buffer, and closes — one crossing instead of three.
func (pr *Proc) OpenReadClose(path string, ub UserBuf) (int, error) {
	pr.enter(NrOpenReadClose, len(path))
	a := Args{Path: path, Buf: pr.P.UAS.View(ub.Addr, ub.Len)}
	n, err := bodyOpenReadClose(pr, &a)
	if err != nil {
		pr.exit(NrOpenReadClose, len(path), 0)
		return 0, err
	}
	pr.exit(NrOpenReadClose, len(path), a.Out)
	return int(n), nil
}

// OpenWriteClose creates/truncates path, writes the user buffer, and
// closes, in one crossing.
func (pr *Proc) OpenWriteClose(path string, ub UserBuf) (int, error) {
	pr.enter(NrOpenWriteClose, len(path)+ub.Len)
	a := Args{Path: path, Buf: pr.P.UAS.View(ub.Addr, ub.Len)}
	n, err := bodyOpenWriteClose(pr, &a)
	if !a.CopiedIn {
		pr.exit(NrOpenWriteClose, len(path), 0)
		return 0, err
	}
	pr.exit(NrOpenWriteClose, len(path)+ub.Len, 0)
	return int(n), err
}

// OpenFstat opens path and returns both the descriptor and the
// file's attributes, eliminating the separate fstat crossing.
func (pr *Proc) OpenFstat(path string) (int, vfs.Attr, error) {
	pr.enter(NrOpenFstat, len(path))
	a := Args{Path: path}
	fd, err := bodyOpenFstat(pr, &a)
	if err != nil {
		pr.exit(NrOpenFstat, len(path), 0)
		return -1, vfs.Attr{}, err
	}
	pr.exit(NrOpenFstat, len(path), a.Out)
	return int(fd), a.Attr, nil
}
