package sys

import (
	"errors"
	"fmt"

	"repro/internal/kring"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// The syscall registry: every system call is defined ONCE, as a
// kernel-side body operating on decoded Args, and is then invocable
// from two entry paths that differ only in how arguments arrive and
// how boundary costs are charged:
//
//   - the classic trap path: the exported Proc methods in calls.go /
//     consolidated.go decode Go-typed arguments into Args, bracket
//     the body with pr.enter/pr.exit (trap + per-byte user-copy
//     charges), and translate Args back to Go results. klint's
//     chargecov analyzer keeps proving enter/exit balance on these
//     wrappers exactly as before.
//
//   - the ring drain path: ring.go pops SQEs, the per-call decoder in
//     this table turns the SQE + data-area windows into the same
//     Args, and the body runs in kernel context with only
//     KernelCall + kernel-rate copy charges — the whole batch shares
//     one trap.
//
// Payload buffers are mem.UserViews in both paths: the classic path
// views the caller's user buffer, the ring path views the shared
// data area, and the body cannot tell the difference — one
// charging- and fault-correct data plane.

// Args is the decoded argument/result record a syscall body operates
// on. Decoders fill the inputs; bodies fill Attr/Out and return the
// syscall's primary result.
type Args struct {
	// Path/Path2 are pathname arguments (Path2 is rename's target).
	Path, Path2 string
	// Fd is the descriptor argument.
	Fd int
	// Off/Whence are lseek's arguments.
	Off    int64
	Whence int
	// Flags are open's flags.
	Flags int
	// Buf is the payload window: the user buffer on the classic path,
	// a data-area window on the ring path. Zero (invalid) when the
	// call carries no payload or the caller wants none materialized.
	Buf mem.UserView
	// Attr receives stat results.
	Attr vfs.Attr
	// In/Out are the payload byte counts consumed/produced, used by
	// each entry path for its own copy accounting (user-rate on the
	// classic path, kernel-rate on the ring path).
	In, Out int
	// CopiedIn records that the body consumed the input payload (the
	// classic write path charges copyin only in that case, matching
	// the historical exit accounting).
	CopiedIn bool
}

// sysdef is one registered system call.
type sysdef struct {
	// body is the kernel-side implementation; nil marks calls that
	// exist only as classic entry points with un-tabled result shapes
	// (getdents, readdirplus, the probe/ku/ring management calls).
	body func(pr *Proc, a *Args) (int64, error)
	// decode turns a popped SQE into Args for the ring path; nil
	// marks the call not ring-invocable (ENOSYS completion).
	decode func(pr *Proc, d *drain, e *kring.SQE, a *Args) error
	// fdArg marks calls whose Args[0] is a descriptor, the ones
	// FlagFDRel may rewrite to a prior completion's result.
	fdArg bool
}

// sysTable is the registry, indexed by Nr.
var sysTable = [nrCount]sysdef{
	NrOpen:           {body: bodyOpen, decode: decOpen},
	NrClose:          {body: bodyClose, decode: decFd, fdArg: true},
	NrRead:           {body: bodyRead, decode: decReadWrite, fdArg: true},
	NrWrite:          {body: bodyWrite, decode: decReadWrite, fdArg: true},
	NrLseek:          {body: bodyLseek, decode: decLseek, fdArg: true},
	NrStat:           {body: bodyStat, decode: decStat},
	NrFstat:          {body: bodyFstat, decode: decFstat, fdArg: true},
	NrGetdents:       {}, // classic-only: returns a Go slice
	NrCreat:          {body: bodyCreat, decode: decPath},
	NrUnlink:         {body: bodyUnlink, decode: decPath},
	NrMkdir:          {body: bodyMkdir, decode: decPath},
	NrRmdir:          {body: bodyRmdir, decode: decPath},
	NrRename:         {body: bodyRename, decode: decRename},
	NrFsync:          {body: bodyFsync, decode: decFd, fdArg: true},
	NrGetpid:         {body: bodyGetpid, decode: decNone},
	NrReaddirPlus:    {}, // classic-only: returns a Go slice
	NrOpenReadClose:  {body: bodyOpenReadClose, decode: decOpenReadClose},
	NrOpenWriteClose: {body: bodyOpenWriteClose, decode: decOpenWriteClose},
	NrOpenFstat:      {body: bodyOpenFstat, decode: decOpenFstat},
	// NrCosy is ring-invocable through the engine's RegisterRingOp
	// registration, not this table; probe/ku/ring management calls
	// are classic-only (a ring cannot nest inside its own drain).
}

// Syscall bodies. Each is the single kernel-side implementation of
// its call; charges made here are entry-path independent.

func bodyOpen(pr *Proc, a *Args) (int64, error) {
	fd, err := pr.openInternal(a.Path, a.Flags)
	return int64(fd), err
}

func bodyCreat(pr *Proc, a *Args) (int64, error) {
	fd, err := pr.openInternal(a.Path, OCreate|OTrunc)
	return int64(fd), err
}

func bodyClose(pr *Proc, a *Args) (int64, error) {
	return 0, pr.closeInternal(a.Fd)
}

func bodyRead(pr *Proc, a *Args) (int64, error) {
	kbuf := pr.kbuf(a.Buf.Len())
	n, err := pr.readInternal(a.Fd, kbuf)
	if err != nil {
		return 0, err
	}
	if werr := a.Buf.CopyOut(0, kbuf[:n]); werr != nil {
		return 0, werr
	}
	a.Out = n
	return int64(n), nil
}

func bodyWrite(pr *Proc, a *Args) (int64, error) {
	kbuf := pr.kbuf(a.Buf.Len())
	if err := a.Buf.CopyIn(0, kbuf); err != nil {
		return 0, err
	}
	a.CopiedIn = true
	n, err := pr.writeInternal(a.Fd, kbuf)
	return int64(n), err
}

func bodyLseek(pr *Proc, a *Args) (int64, error) {
	return pr.lseekInternal(a.Fd, a.Off, a.Whence)
}

func bodyStat(pr *Proc, a *Args) (int64, error) {
	at, err := pr.statInternal(a.Path)
	if err != nil {
		return 0, err
	}
	a.Attr = at
	a.Out = vfs.StatSize
	return 0, materializeAttr(a)
}

func bodyFstat(pr *Proc, a *Args) (int64, error) {
	at, err := pr.fstatInternal(a.Fd)
	if err != nil {
		return 0, err
	}
	a.Attr = at
	a.Out = vfs.StatSize
	return 0, materializeAttr(a)
}

func bodyUnlink(pr *Proc, a *Args) (int64, error) {
	return 0, pr.unlinkInternal(a.Path)
}

func bodyMkdir(pr *Proc, a *Args) (int64, error) {
	fs, parent, name, err := pr.K.NS.ResolveParent(pr.P, a.Path)
	if err != nil {
		return 0, err
	}
	id, err := fs.Mkdir(pr.P, parent, name)
	if err != nil {
		return 0, err
	}
	pr.K.NS.Dc.Insert(pr.P, fs, parent, name, id)
	return 0, nil
}

func bodyRmdir(pr *Proc, a *Args) (int64, error) {
	fs, parent, name, err := pr.K.NS.ResolveParent(pr.P, a.Path)
	if err != nil {
		return 0, err
	}
	if err := fs.Rmdir(pr.P, parent, name); err != nil {
		return 0, err
	}
	pr.K.NS.Dc.Invalidate(pr.P, fs, parent, name)
	return 0, nil
}

func bodyRename(pr *Proc, a *Args) (int64, error) {
	ofs, oparent, oname, err := pr.K.NS.ResolveParent(pr.P, a.Path)
	if err != nil {
		return 0, err
	}
	nfs, nparent, nname, err := pr.K.NS.ResolveParent(pr.P, a.Path2)
	if err != nil {
		return 0, err
	}
	if ofs != nfs {
		return 0, vfs.ErrInval
	}
	if err := ofs.Rename(pr.P, oparent, oname, nparent, nname); err != nil {
		return 0, err
	}
	pr.K.NS.Dc.Invalidate(pr.P, ofs, oparent, oname)
	pr.K.NS.Dc.Invalidate(pr.P, nfs, nparent, nname)
	return 0, nil
}

func bodyFsync(pr *Proc, a *Args) (int64, error) {
	f, err := pr.file(a.Fd)
	if err != nil {
		return 0, err
	}
	return 0, f.fs.Sync(pr.P)
}

func bodyGetpid(pr *Proc, a *Args) (int64, error) {
	return int64(pr.P.PID), nil
}

func bodyOpenReadClose(pr *Proc, a *Args) (int64, error) {
	fd, err := pr.openInternal(a.Path, ORdonly)
	if err != nil {
		return 0, err
	}
	kbuf := make([]byte, a.Buf.Len())
	n, err := pr.readInternal(fd, kbuf)
	cerr := pr.closeInternal(fd)
	if err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if werr := a.Buf.CopyOut(0, kbuf[:n]); werr != nil {
		return 0, werr
	}
	a.Out = n
	return int64(n), nil
}

func bodyOpenWriteClose(pr *Proc, a *Args) (int64, error) {
	kbuf := make([]byte, a.Buf.Len())
	if err := a.Buf.CopyIn(0, kbuf); err != nil {
		return 0, err
	}
	fd, err := pr.openInternal(a.Path, OCreate|OTrunc)
	if err != nil {
		return 0, err
	}
	// The payload is committed from here on: the historical exit
	// accounting charges copyin only once the write path consumes it.
	a.CopiedIn = true
	n, err := pr.writeInternal(fd, kbuf)
	cerr := pr.closeInternal(fd)
	if err == nil {
		err = cerr
	}
	return int64(n), err
}

func bodyOpenFstat(pr *Proc, a *Args) (int64, error) {
	fd, err := pr.openInternal(a.Path, ORdonly)
	if err != nil {
		return 0, err
	}
	at, err := pr.fstatInternal(fd)
	if err != nil {
		_ = pr.closeInternal(fd)
		return 0, err
	}
	a.Attr = at
	a.Out = vfs.StatSize
	if err := materializeAttr(a); err != nil {
		_ = pr.closeInternal(fd)
		return 0, err
	}
	return int64(fd), nil
}

// materializeAttr serializes a.Attr into a.Buf when the caller
// supplied an output window (the ring path); the classic path reads
// the Attr field directly and passes no window.
func materializeAttr(a *Args) error {
	if !a.Buf.Valid() {
		return nil
	}
	if a.Buf.Len() < vfs.StatSize {
		return fmt.Errorf("%w: %d-byte stat window", vfs.ErrInval, a.Buf.Len())
	}
	return a.Buf.CopyOut(0, encodeAttr(a.Attr))
}

// encodeAttr serializes an Attr into the vfs.StatSize-byte struct
// stat layout — the same wire layout kext.EncodeStat gives Cosy
// compounds, so ring and compound consumers share one decoder.
func encodeAttr(a vfs.Attr) []byte {
	buf := make([]byte, vfs.StatSize)
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(a.ID))
	put(8, uint64(a.Size))
	put(16, uint64(a.Nlink))
	put(24, uint64(a.Mode))
	put(32, uint64(a.Type))
	put(40, uint64(a.Mtime))
	return buf
}

// Ring-path decoders. Argument conventions (DESIGN.md §12):
//
//	open            path in data window; Args[0] = flags
//	creat/unlink/
//	mkdir/rmdir     path in data window
//	close/fsync     Args[0] = fd
//	read/write      Args[0] = fd; payload in data window
//	lseek           Args[0] = fd, Args[1] = off, Args[2] = whence
//	stat            path in data window; Args[0] = attr offset (<0: none)
//	fstat           Args[0] = fd, Args[1] = attr offset (<0: none)
//	rename          old path in data window; new at Args[0]/Args[1]
//	open_read_close path at Args[0]/Args[1]; read window in data window
//	open_write_close path at Args[0]/Args[1]; payload in data window
//	open_fstat      path in data window; Args[0] = attr offset (<0: none)
//
// Every decoder fully validates offsets and lengths against the ring
// geometry before the body runs; a hostile SQE yields an errno
// completion, never a fault in the drain loop.

// maxRingPath bounds pathname windows, mirroring PATH_MAX.
const maxRingPath = 4096

func decNone(pr *Proc, d *drain, e *kring.SQE, a *Args) error { return nil }

func decFd(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	a.Fd = int(e.Args[0])
	return nil
}

func decFstat(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	a.Fd = int(e.Args[0])
	return d.attrWindow(e.Args[1], a)
}

func decPath(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	return d.pathArg(e.DataOff, e.DataLen, a)
}

func decOpen(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	a.Flags = int(e.Args[0])
	return d.pathArg(e.DataOff, e.DataLen, a)
}

func decReadWrite(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	a.Fd = int(e.Args[0])
	buf, err := d.rs.kr.Data(int(e.DataOff), int(e.DataLen))
	if err != nil {
		return fmt.Errorf("%w: payload window: %v", vfs.ErrInval, err)
	}
	a.Buf = buf
	if e.Op == uint16(NrWrite) {
		a.In = int(e.DataLen)
	}
	return nil
}

func decLseek(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	a.Fd = int(e.Args[0])
	a.Off = e.Args[1]
	a.Whence = int(e.Args[2])
	return nil
}

func decStat(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	if err := d.pathArg(e.DataOff, e.DataLen, a); err != nil {
		return err
	}
	return d.attrWindow(e.Args[0], a)
}

func decRename(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	if err := d.pathArg(e.DataOff, e.DataLen, a); err != nil {
		return err
	}
	p2, err := d.pathString(e.Args[0], e.Args[1])
	if err != nil {
		return err
	}
	a.Path2 = p2
	a.In += len(p2)
	return nil
}

func decOpenReadClose(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	path, err := d.pathString(e.Args[0], e.Args[1])
	if err != nil {
		return err
	}
	a.Path = path
	a.In = len(path)
	buf, err := d.rs.kr.Data(int(e.DataOff), int(e.DataLen))
	if err != nil {
		return fmt.Errorf("%w: payload window: %v", vfs.ErrInval, err)
	}
	a.Buf = buf
	return nil
}

func decOpenWriteClose(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	if err := decOpenReadClose(pr, d, e, a); err != nil {
		return err
	}
	a.In += int(e.DataLen)
	return nil
}

func decOpenFstat(pr *Proc, d *drain, e *kring.SQE, a *Args) error {
	if err := d.pathArg(e.DataOff, e.DataLen, a); err != nil {
		return err
	}
	return d.attrWindow(e.Args[0], a)
}

// Errno codes for CQE.Err, mirroring Linux numbering where a
// counterpart exists.
const (
	errnoNoEnt    uint32 = 2
	errnoBadF     uint32 = 9
	errnoExist    uint32 = 17
	errnoNotDir   uint32 = 20
	errnoIsDir    uint32 = 21
	errnoInval    uint32 = 22
	errnoMFile    uint32 = 24
	errnoNoSys    uint32 = 38
	errnoNotEmpty uint32 = 39
	errnoNoDev    uint32 = 19
	errnoCanceled uint32 = 125
	errnoKuDead   uint32 = 129
	errnoIO       uint32 = 5
)

// errCanceled reports an entry canceled by anycall steering or by a
// failed FDRel reference.
var errCanceled = errors.New("sys: ring entry canceled")

// errNoSys reports an op the ring cannot dispatch.
var errNoSys = errors.New("sys: ring op not ring-invocable")

// errnoOf maps a body error to its CQE errno code.
func errnoOf(err error) uint32 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, vfs.ErrNotExist):
		return errnoNoEnt
	case errors.Is(err, ErrBadFD):
		return errnoBadF
	case errors.Is(err, vfs.ErrExist):
		return errnoExist
	case errors.Is(err, vfs.ErrNotDir):
		return errnoNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return errnoIsDir
	case errors.Is(err, vfs.ErrInval):
		return errnoInval
	case errors.Is(err, vfs.ErrNotEmpty):
		return errnoNotEmpty
	case errors.Is(err, vfs.ErrNoDev):
		return errnoNoDev
	case errors.Is(err, ErrTooMany):
		return errnoMFile
	case errors.Is(err, errCanceled):
		return errnoCanceled
	case errors.Is(err, errNoSys):
		return errnoNoSys
	case errors.Is(err, ErrKuDead):
		return errnoKuDead
	default:
		return errnoIO
	}
}
