package sys

import (
	"errors"
	"fmt"

	"repro/internal/kprobe"
	"repro/internal/sim"
)

// ErrNoProbes is returned when the kernel was booted without a kprobe
// subsystem.
var ErrNoProbes = errors.New("sys: kprobe subsystem not available")

// probeSpecBytes models the copyin size of an attach spec: the
// program source, a fixed header (tracepoint, entry, counts), and the
// map declarations.
func probeSpecBytes(spec kprobe.Spec) int {
	n := len(spec.Source) + len(spec.Entry) + 16
	for _, m := range spec.Maps {
		n += len(m.Name) + 2
	}
	return n
}

// ProbeAttach is the probe_attach system call: copy in the spec,
// compile + verify + instrument the program in the kernel, and attach
// it at its tracepoint. The returned id names the program for
// ProbeRead. Verification cost is charged to the calling process
// under the probe subsystem; a rejected program costs only its
// compile/verify time and attaches nothing.
func (pr *Proc) ProbeAttach(spec kprobe.Spec) (int, error) {
	in := probeSpecBytes(spec)
	pr.enter(NrProbeAttach, in)
	id := -1
	var err error
	if pr.K.Probes == nil {
		err = ErrNoProbes
	} else {
		var cost sim.Cycles
		id, cost, err = pr.K.Probes.Attach(spec)
		if cost > 0 {
			pr.chargeProbe(cost)
		}
	}
	pr.exit(NrProbeAttach, in, 0)
	if err != nil {
		return -1, err
	}
	return id, nil
}

// ProbeDetach removes an attached program; once a tracepoint has no
// programs left it costs zero cycles again.
func (pr *Proc) ProbeDetach(id int) error {
	pr.enter(NrProbeAttach, 8)
	var err error
	if pr.K.Probes == nil {
		err = ErrNoProbes
	} else {
		err = pr.K.Probes.Detach(id)
	}
	pr.exit(NrProbeAttach, 8, 0)
	return err
}

// ProbeRead is the probe_read system call: serialize program id's
// aggregation maps kernel-side and copy the summary out in a single
// crossing — the read path that replaces draining an event ring.
func (pr *Proc) ProbeRead(id int, ub UserBuf) (int, error) {
	pr.enter(NrProbeRead, 8)
	var data []byte
	var err error
	if pr.K.Probes == nil {
		err = ErrNoProbes
	} else {
		var cost sim.Cycles
		data, cost, err = pr.K.Probes.Read(id)
		if cost > 0 {
			pr.chargeProbe(cost)
		}
	}
	out := 0
	if err == nil {
		if len(data) > ub.Len {
			err = fmt.Errorf("sys: probe_read buffer too small (%d bytes, need %d)", ub.Len, len(data))
		} else if werr := pr.P.UAS.View(ub.Addr, ub.Len).CopyOut(0, data); werr != nil {
			err = werr
		} else {
			out = len(data)
		}
	}
	pr.exit(NrProbeRead, 8, out)
	if err != nil {
		return 0, err
	}
	return out, nil
}
