// Package sys is the simulated system-call layer: the user/kernel
// boundary. Every call charges the user-side dispatch cost, one trap
// (mode switch) and explicit copyin/copyout per byte — the two
// overheads the paper's §2 attacks — then runs the VFS operation in
// kernel mode.
//
// The package provides both the classic POSIX calls and the paper's
// consolidated calls (§2.2): readdirplus, open_read_close,
// open_write_close and open_fstat, each of which crosses the boundary
// once instead of once per step. It also exposes kernel-internal
// entrypoints (no trap, no user copies) that the Cosy kernel
// extension uses to issue system calls from inside the kernel: "the
// system call invocation by the Cosy kernel module is the same as a
// normal process" (§2.3).
package sys

// Nr is a system call number.
type Nr uint16

// System call numbers. The consolidated calls are the ones this
// project adds to the kernel.
const (
	NrOpen Nr = iota
	NrClose
	NrRead
	NrWrite
	NrLseek
	NrStat
	NrFstat
	NrGetdents
	NrCreat
	NrUnlink
	NrMkdir
	NrRmdir
	NrRename
	NrFsync
	NrGetpid
	// Consolidated system calls (§2.2).
	NrReaddirPlus
	NrOpenReadClose
	NrOpenWriteClose
	NrOpenFstat
	// NrCosy executes a compound (§2.3).
	NrCosy
	// NrProbeAttach verifies and attaches a kprobe program;
	// NrProbeRead reads its aggregation maps back in one crossing.
	NrProbeAttach
	NrProbeRead
	// NrKuLoad compiles, analyzes, and instruments a kucode extension
	// in the kernel; NrKuCall invokes its entry point in one crossing.
	NrKuLoad
	NrKuCall
	// NrRingSetup maps a kring SQ/CQ pair into both address spaces;
	// NrRingEnter drains the whole submission queue in one crossing;
	// NrRingClose tears the mapping down.
	NrRingSetup
	NrRingEnter
	NrRingClose
	nrCount
)

var nrNames = [...]string{
	"open", "close", "read", "write", "lseek", "stat", "fstat",
	"getdents", "creat", "unlink", "mkdir", "rmdir", "rename", "fsync",
	"getpid", "readdirplus", "open_read_close", "open_write_close",
	"open_fstat", "cosy", "probe_attach", "probe_read", "ku_load",
	"ku_call", "ring_setup", "ring_enter", "ring_close",
}

func (n Nr) String() string {
	if int(n) < len(nrNames) {
		return nrNames[n]
	}
	return "sys_?"
}

// Count reports the number of defined syscalls.
func Count() int { return int(nrCount) }

// Hook observes every system call for tracing (package trace
// implements it). in and out are the bytes copied across the
// boundary in each direction.
type Hook interface {
	Syscall(pid int, nr Nr, in, out int)
}
