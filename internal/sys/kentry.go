package sys

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Kernel-internal system call entry points, used by the Cosy kernel
// extension: "The system call invocation by the Cosy kernel module is
// the same as a normal process and hence all the necessary checks are
// performed" (§2.3) — the path validation, descriptor checks and VFS
// work all happen, but there is no trap and no user-space copy; data
// stays in kernel buffers. Each entry charges Costs.KernelCall for
// the in-kernel dispatch.
//
// These must be called with the process already in kernel mode.

func (pr *Proc) kcall() {
	pr.P.Charge(pr.K.M.Costs.KernelCall)
}

// KOpen is the in-kernel open.
func (pr *Proc) KOpen(path string, flags int) (int, error) {
	pr.kcall()
	return pr.openInternal(path, flags)
}

// KCreat is the in-kernel creat.
func (pr *Proc) KCreat(path string) (int, error) {
	pr.kcall()
	return pr.openInternal(path, OCreate|OTrunc)
}

// KClose is the in-kernel close.
func (pr *Proc) KClose(fd int) error {
	pr.kcall()
	return pr.closeInternal(fd)
}

// KRead reads into a kernel buffer, charging the kernel-internal
// copy.
func (pr *Proc) KRead(fd int, buf []byte) (int, error) {
	pr.kcall()
	n, err := pr.readInternal(fd, buf)
	if n > 0 {
		pr.P.Charge(sim.Cycles(n) * pr.K.M.Costs.CopyKernByte)
	}
	return n, err
}

// KWrite writes from a kernel buffer.
func (pr *Proc) KWrite(fd int, data []byte) (int, error) {
	pr.kcall()
	if len(data) > 0 {
		pr.P.Charge(sim.Cycles(len(data)) * pr.K.M.Costs.CopyKernByte)
	}
	return pr.writeInternal(fd, data)
}

// KLseek is the in-kernel lseek.
func (pr *Proc) KLseek(fd int, off int64, whence int) (int64, error) {
	pr.kcall()
	return pr.lseekInternal(fd, off, whence)
}

// KStat is the in-kernel stat.
func (pr *Proc) KStat(path string) (vfs.Attr, error) {
	pr.kcall()
	return pr.statInternal(path)
}

// KFstat is the in-kernel fstat.
func (pr *Proc) KFstat(fd int) (vfs.Attr, error) {
	pr.kcall()
	return pr.fstatInternal(fd)
}

// KUnlink is the in-kernel unlink.
func (pr *Proc) KUnlink(path string) error {
	pr.kcall()
	return pr.unlinkInternal(path)
}

// KMkdir is the in-kernel mkdir.
func (pr *Proc) KMkdir(path string) error {
	pr.kcall()
	fs, parent, name, err := pr.K.NS.ResolveParent(pr.P, path)
	if err != nil {
		return err
	}
	id, err := fs.Mkdir(pr.P, parent, name)
	if err != nil {
		return err
	}
	pr.K.NS.Dc.Insert(pr.P, fs, parent, name, id)
	return nil
}

// RawSyscall runs fn as the body of system call nr, performing the
// standard user->kernel->user transition around it with in/out bytes
// of boundary copying. The Cosy extension uses this for NrCosy: one
// crossing for the whole compound.
func (pr *Proc) RawSyscall(nr Nr, in, out int, fn func() (int64, error)) (int64, error) {
	pr.enter(nr, in)
	v, err := fn()
	pr.exit(nr, in, out)
	return v, err
}
