// Package alloc implements the simulated kernel's memory allocators:
// a slab-style kmalloc with size classes and a page-granular vmalloc.
//
// The distinction matters for Kefence (§3.2): "Kefence can only
// protect virtually-mapped buffers; those allocated using kmalloc are
// not protected. Therefore, to add bounds checking to a kernel module,
// one must use vmalloc instead of kmalloc" — and vmalloc is slower and
// consumes whole pages, which is where the measured overhead comes
// from. Package kefence wraps these primitives with guard pages.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Stats captures allocator activity. MaxLivePages and the byte
// counters reproduce the paper's §3.2 measurements ("the maximum
// number of outstanding allocated pages ... was 2,085 and the average
// size of each memory allocation was 80 bytes").
type Stats struct {
	Live         int   // current outstanding allocations
	LiveBytes    int64 // current outstanding requested bytes
	LivePages    int   // current pages backing live allocations
	MaxLive      int
	MaxLivePages int
	TotalAllocs  int64
	TotalFrees   int64
	TotalBytes   int64 // sum of requested sizes over all allocations
}

// MeanAllocSize reports the average requested allocation size.
func (s Stats) MeanAllocSize() float64 {
	if s.TotalAllocs == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.TotalAllocs)
}

// Allocator is the interface kernel modules allocate through. Wrapfs
// takes one of these so the Kefence experiment can swap kmalloc for
// guarded vmalloc without touching the module.
type Allocator interface {
	// Alloc returns the address of a buffer of at least size bytes.
	Alloc(size int) (mem.Addr, error)
	// Free releases the buffer at addr, which must be an address
	// returned by Alloc on this allocator.
	Free(addr mem.Addr) error
	// SizeOf reports the requested size of a live allocation.
	SizeOf(addr mem.Addr) (int, bool)
	// Stats returns a snapshot of allocator counters.
	Stats() Stats
}

// ErrBadFree reports a free of an address the allocator does not own.
var ErrBadFree = errors.New("alloc: free of unknown address")

// ChargeFunc receives allocator cost charges.
type ChargeFunc func(sim.Cycles)

// ---------------------------------------------------------------------------
// kmalloc

// sizeClasses are the slab classes, matching Linux's kmalloc-32 ...
// kmalloc-4096 caches.
var sizeClasses = []int{32, 64, 128, 256, 512, 1024, 2048, 4096}

// Kmalloc is the slab allocator.
type Kmalloc struct {
	as     *mem.AddressSpace
	costs  *sim.Costs
	charge ChargeFunc

	free  [][]mem.Addr     // per-class free lists
	owned map[mem.Addr]kmi // live allocations
	stats Stats
}

type kmi struct {
	class int // index into sizeClasses, or -1 for a multi-page allocation
	size  int // requested size
	pages int // pages owned by this allocation (multi-page only)
}

// NewKmalloc creates a slab allocator carving from as. charge may be
// nil.
func NewKmalloc(as *mem.AddressSpace, costs *sim.Costs, charge ChargeFunc) *Kmalloc {
	return &Kmalloc{
		as:     as,
		costs:  costs,
		charge: charge,
		free:   make([][]mem.Addr, len(sizeClasses)),
		owned:  make(map[mem.Addr]kmi),
	}
}

func (k *Kmalloc) chargeCost(c sim.Cycles) {
	if k.charge != nil && c > 0 {
		k.charge(c)
	}
}

func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1
}

// Alloc implements Allocator.
func (k *Kmalloc) Alloc(size int) (mem.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: kmalloc of non-positive size %d", size)
	}
	if k.costs != nil {
		k.chargeCost(k.costs.Kmalloc)
	}
	ci := classFor(size)
	if ci < 0 {
		// Multi-page allocation.
		pages := mem.PagesFor(size)
		base, err := k.as.MapRegion(pages, mem.PermRW)
		if err != nil {
			return 0, err
		}
		k.owned[base] = kmi{class: -1, size: size, pages: pages}
		k.account(size, pages)
		return base, nil
	}
	if len(k.free[ci]) == 0 {
		// Carve a fresh slab page into objects of this class.
		base, err := k.as.MapRegion(1, mem.PermRW)
		if err != nil {
			return 0, err
		}
		obj := sizeClasses[ci]
		for off := 0; off+obj <= mem.PageSize; off += obj {
			k.free[ci] = append(k.free[ci], base+mem.Addr(off))
		}
	}
	n := len(k.free[ci])
	addr := k.free[ci][n-1]
	k.free[ci] = k.free[ci][:n-1]
	k.owned[addr] = kmi{class: ci, size: size}
	k.account(size, 0)
	return addr, nil
}

func (k *Kmalloc) account(size, pages int) {
	k.stats.Live++
	k.stats.LiveBytes += int64(size)
	k.stats.LivePages += pages
	k.stats.TotalAllocs++
	k.stats.TotalBytes += int64(size)
	if k.stats.Live > k.stats.MaxLive {
		k.stats.MaxLive = k.stats.Live
	}
	if k.stats.LivePages > k.stats.MaxLivePages {
		k.stats.MaxLivePages = k.stats.LivePages
	}
}

// Free implements Allocator.
func (k *Kmalloc) Free(addr mem.Addr) error {
	info, ok := k.owned[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(addr))
	}
	if k.costs != nil {
		k.chargeCost(k.costs.Kfree)
	}
	delete(k.owned, addr)
	k.stats.Live--
	k.stats.LiveBytes -= int64(info.size)
	k.stats.TotalFrees++
	if info.class < 0 {
		for i := 0; i < info.pages; i++ {
			if err := k.as.Unmap(addr + mem.Addr(i*mem.PageSize)); err != nil {
				return err
			}
		}
		k.stats.LivePages -= info.pages
		return nil
	}
	k.free[info.class] = append(k.free[info.class], addr)
	return nil
}

// SizeOf implements Allocator.
func (k *Kmalloc) SizeOf(addr mem.Addr) (int, bool) {
	info, ok := k.owned[addr]
	return info.size, ok
}

// Stats implements Allocator.
func (k *Kmalloc) Stats() Stats { return k.stats }

// ---------------------------------------------------------------------------
// vmalloc

// Vmalloc is the page-granular allocator: every allocation receives
// whole pages. "The kernel's vmalloc function allocates one or several
// pages for each request" (§3.2).
type Vmalloc struct {
	as     *mem.AddressSpace
	costs  *sim.Costs
	charge ChargeFunc

	// UseHashTable selects the paper's optimization: "to speed up the
	// default vfree function we have added a hash table to store the
	// information about virtual memory buffers". When false, Free
	// charges the slower VfreeNoHash cost.
	UseHashTable bool

	owned map[mem.Addr]vmi
	stats Stats
}

type vmi struct {
	size  int
	pages int
}

// NewVmalloc creates the page allocator. charge may be nil. The hash
// table optimization is on by default.
func NewVmalloc(as *mem.AddressSpace, costs *sim.Costs, charge ChargeFunc) *Vmalloc {
	return &Vmalloc{as: as, costs: costs, charge: charge, UseHashTable: true, owned: make(map[mem.Addr]vmi)}
}

func (v *Vmalloc) chargeCost(c sim.Cycles) {
	if v.charge != nil && c > 0 {
		v.charge(c)
	}
}

// Alloc implements Allocator.
func (v *Vmalloc) Alloc(size int) (mem.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: vmalloc of non-positive size %d", size)
	}
	if v.costs != nil {
		v.chargeCost(v.costs.Vmalloc)
	}
	pages := mem.PagesFor(size)
	base, err := v.as.MapRegion(pages, mem.PermRW)
	if err != nil {
		return 0, err
	}
	v.owned[base] = vmi{size: size, pages: pages}
	v.stats.Live++
	v.stats.LiveBytes += int64(size)
	v.stats.LivePages += pages
	v.stats.TotalAllocs++
	v.stats.TotalBytes += int64(size)
	if v.stats.Live > v.stats.MaxLive {
		v.stats.MaxLive = v.stats.Live
	}
	if v.stats.LivePages > v.stats.MaxLivePages {
		v.stats.MaxLivePages = v.stats.LivePages
	}
	return base, nil
}

// Free implements Allocator.
func (v *Vmalloc) Free(addr mem.Addr) error {
	info, ok := v.owned[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(addr))
	}
	if v.costs != nil {
		if v.UseHashTable {
			v.chargeCost(v.costs.Vfree)
		} else {
			v.chargeCost(v.costs.VfreeNoHash)
		}
	}
	delete(v.owned, addr)
	for i := 0; i < info.pages; i++ {
		if err := v.as.Unmap(addr + mem.Addr(i*mem.PageSize)); err != nil {
			return err
		}
	}
	v.stats.Live--
	v.stats.LiveBytes -= int64(info.size)
	v.stats.LivePages -= info.pages
	v.stats.TotalFrees++
	return nil
}

// SizeOf implements Allocator.
func (v *Vmalloc) SizeOf(addr mem.Addr) (int, bool) {
	info, ok := v.owned[addr]
	return info.size, ok
}

// Stats implements Allocator.
func (v *Vmalloc) Stats() Stats { return v.stats }

var (
	_ Allocator = (*Kmalloc)(nil)
	_ Allocator = (*Vmalloc)(nil)
)
