package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newSpace() (*mem.AddressSpace, *sim.Costs) {
	costs := sim.DefaultCosts()
	return mem.NewAddressSpace("kernel", mem.NewPhys(256<<20), &costs), &costs
}

func TestKmallocBasic(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	a, err := k.Alloc(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(a, make([]byte, 80)); err != nil {
		t.Fatalf("allocated buffer not writable: %v", err)
	}
	if sz, ok := k.SizeOf(a); !ok || sz != 80 {
		t.Fatalf("SizeOf = %d,%v", sz, ok)
	}
	if err := k.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.SizeOf(a); ok {
		t.Fatal("freed allocation still tracked")
	}
}

func TestKmallocPacksObjectsPerPage(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	before := as.Phys().InUse()
	// 128 objects of 32 bytes fit in one page.
	for i := 0; i < 128; i++ {
		if _, err := k.Alloc(32); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Phys().InUse() - before; got != 1 {
		t.Fatalf("128x32B used %d pages, want 1", got)
	}
}

func TestKmallocDistinctAddresses(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	seen := map[mem.Addr]bool{}
	for i := 0; i < 500; i++ {
		a, err := k.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %#x handed out twice", uint64(a))
		}
		seen[a] = true
	}
}

func TestKmallocReusesFreed(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	a, _ := k.Alloc(64)
	_ = k.Free(a)
	b, _ := k.Alloc(64)
	if a != b {
		t.Fatalf("freed slot not reused: %#x vs %#x", uint64(a), uint64(b))
	}
}

func TestKmallocLarge(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	before := as.Phys().InUse()
	a, err := k.Alloc(3*mem.PageSize + 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Phys().InUse() - before; got != 4 {
		t.Fatalf("large alloc used %d pages, want 4", got)
	}
	if err := k.Free(a); err != nil {
		t.Fatal(err)
	}
	if as.Phys().InUse() != before {
		t.Fatal("large free leaked pages")
	}
}

func TestKmallocBadFree(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	if err := k.Free(0x1234); !errors.Is(err, ErrBadFree) {
		t.Fatalf("err = %v", err)
	}
}

func TestKmallocZeroSize(t *testing.T) {
	as, costs := newSpace()
	k := NewKmalloc(as, costs, nil)
	if _, err := k.Alloc(0); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
}

func TestVmallocPageGranular(t *testing.T) {
	as, costs := newSpace()
	v := NewVmalloc(as, costs, nil)
	before := as.Phys().InUse()
	a, err := v.Alloc(80)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Phys().InUse() - before; got != 1 {
		t.Fatalf("80B vmalloc used %d pages, want a whole page", got)
	}
	if a&mem.PageMask != 0 {
		t.Fatalf("vmalloc not page aligned: %#x", uint64(a))
	}
	if err := v.Free(a); err != nil {
		t.Fatal(err)
	}
	if as.Phys().InUse() != before {
		t.Fatal("vfree leaked")
	}
}

func TestVmallocStatsForPaperMetrics(t *testing.T) {
	as, costs := newSpace()
	v := NewVmalloc(as, costs, nil)
	var addrs []mem.Addr
	for i := 0; i < 100; i++ {
		a, _ := v.Alloc(80)
		addrs = append(addrs, a)
	}
	for _, a := range addrs[:50] {
		_ = v.Free(a)
	}
	s := v.Stats()
	if s.Live != 50 || s.LivePages != 50 {
		t.Fatalf("live = %d pages %d", s.Live, s.LivePages)
	}
	if s.MaxLivePages != 100 {
		t.Fatalf("max pages = %d", s.MaxLivePages)
	}
	if got := s.MeanAllocSize(); got != 80 {
		t.Fatalf("mean alloc = %v", got)
	}
}

func TestVmallocCostsMoreThanKmalloc(t *testing.T) {
	as, costs := newSpace()
	var kc, vc sim.Cycles
	k := NewKmalloc(as, costs, func(c sim.Cycles) { kc += c })
	v := NewVmalloc(as, costs, func(c sim.Cycles) { vc += c })
	a, _ := k.Alloc(80)
	_ = k.Free(a)
	b, _ := v.Alloc(80)
	_ = v.Free(b)
	if vc <= kc {
		t.Fatalf("vmalloc cycle cost %d <= kmalloc %d; paper requires vmalloc slower", vc, kc)
	}
}

func TestVfreeHashTableFaster(t *testing.T) {
	as, costs := newSpace()
	var withHash, without sim.Cycles
	v1 := NewVmalloc(as, costs, func(c sim.Cycles) { withHash += c })
	v2 := NewVmalloc(as, costs, func(c sim.Cycles) { without += c })
	v2.UseHashTable = false
	a, _ := v1.Alloc(100)
	b, _ := v2.Alloc(100)
	withHash, without = 0, 0
	_ = v1.Free(a)
	_ = v2.Free(b)
	if withHash >= without {
		t.Fatalf("hashed vfree %d >= linear vfree %d", withHash, without)
	}
}

func TestMeanAllocSizeEmpty(t *testing.T) {
	var s Stats
	if s.MeanAllocSize() != 0 {
		t.Fatal("mean of no allocations")
	}
}

func TestAllocatorsProperty(t *testing.T) {
	// Property: after any alloc/free sequence, live counters are
	// consistent and all live buffers are independently writable.
	as, costs := newSpace()
	for _, a := range []Allocator{NewKmalloc(as, costs, nil), NewVmalloc(as, costs, nil)} {
		a := a
		if err := quick.Check(func(sizes []uint16) bool {
			var live []mem.Addr
			for _, sz := range sizes {
				size := int(sz%5000) + 1
				addr, err := a.Alloc(size)
				if err != nil {
					return false
				}
				live = append(live, addr)
			}
			for i, addr := range live {
				if err := as.WriteBytes(addr, []byte{byte(i)}); err != nil {
					return false
				}
			}
			for _, addr := range live {
				if err := a.Free(addr); err != nil {
					return false
				}
			}
			return a.Stats().Live == len(liveAfter(a))
		}, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatal(err)
		}
	}
}

// liveAfter is a helper: allocators do not expose their live set, so
// we infer emptiness via Stats.
func liveAfter(a Allocator) []struct{} {
	return make([]struct{}, a.Stats().Live)
}
