package kernel

import (
	"repro/internal/kperf"
	"repro/internal/sim"
)

// TraceHook is the request-tracing seam: the machine announces every
// cycle charge and every scheduling transition through it, host-side
// only. Like FlightHook — and unlike ProbeTap — a trace hook can
// never charge cycles (it has no way to return a cost), so a machine
// with a tracer attached is bit-identical in simulated time to one
// without, by construction. internal/ktrace's Tracer implements this
// interface structurally (ktrace imports only kperf and sim, so the
// kernel stays ignorant of the tracer and the tracer of the kernel).
//
// The four callbacks are exactly the information a critical-path
// analyzer needs to partition a request's wall cycles: OnCharge
// classifies on-CPU time (the kperf subsystem tag distinguishes
// boundary copies from kernel work), and OnBlock/OnReady/OnRun carve
// the off-CPU intervals into blocked wait vs run-queue residency.
type TraceHook interface {
	// OnCharge fires for every cycle charge attributed to a process —
	// the same charges kperf's OnCycles sees, with the subsystem the
	// attribution classified them under.
	OnCharge(pid int, c sim.Cycles, kernelMode bool, sub kperf.Subsys)
	// OnBlock fires when a process gives up the CPU to wait on an
	// event; sub names what it waits on (SubDisk for block I/O).
	OnBlock(pid int, sub kperf.Subsys, at sim.Cycles)
	// OnReady fires when a process becomes runnable while off-CPU:
	// preempted, yielded, or woken from a blocked wait. Time from here
	// to OnRun is run-queue residency (scheduler delay).
	OnReady(pid int, at sim.Cycles)
	// OnRun fires when a previously off-CPU process is running again.
	OnRun(pid int, at sim.Cycles)
}

// traceCharge reports a cycle charge to the tracer. kernelMode is the
// mode the charge was attributed in (ChargeSys forces kernel mode even
// outside a syscall), and the subsystem is read off the process's live
// kperf tag stack so the tracer's classification can never drift from
// the attribution's.
func (m *Machine) traceCharge(p *Process, c sim.Cycles, kernelMode bool) {
	if m.Trace != nil {
		m.Trace.OnCharge(p.PID, c, kernelMode, p.Perf.CurrentSub(kernelMode))
	}
}

// traceBlock reports that p is about to block waiting on sub.
func (m *Machine) traceBlock(p *Process, sub kperf.Subsys) {
	if m.Trace != nil {
		m.Trace.OnBlock(p.PID, sub, m.Clock.Now())
	}
}

// traceReady reports that p is runnable but off-CPU.
func (m *Machine) traceReady(p *Process) {
	if m.Trace != nil {
		m.Trace.OnReady(p.PID, m.Clock.Now())
	}
}

// traceRun reports that p is running again.
func (m *Machine) traceRun(p *Process) {
	if m.Trace != nil {
		m.Trace.OnRun(p.PID, m.Clock.Now())
	}
}
