package kernel

import "repro/internal/sim"

// event is a scheduled wakeup.
type event struct {
	when sim.Cycles
	proc *Process
	seq  uint64 // FIFO tiebreak for equal times
}

// eventHeap is a binary min-heap ordered by (when, seq).
type eventHeap struct {
	items []event
	seq   uint64
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	e.seq = h.seq
	h.seq++
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// peek returns the earliest event without removing it.
func (h *eventHeap) peek() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	return h.items[0], true
}
