package kernel

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func newMachine() *Machine {
	return New(Config{})
}

func TestSingleProcessTimes(t *testing.T) {
	m := newMachine()
	p := m.Spawn("worker", func(p *Process) error {
		p.ChargeUser(1000)
		p.EnterKernel()
		p.Charge(500)
		p.ExitKernel()
		p.ChargeUser(250)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	u, s, w := p.Times()
	if u != 1250 || s != 500 || w != 0 {
		t.Fatalf("times = %d/%d/%d", u, s, w)
	}
	if m.Elapsed() != 1750 {
		t.Fatalf("elapsed = %d", m.Elapsed())
	}
}

func TestProcessError(t *testing.T) {
	m := newMachine()
	boom := errors.New("boom")
	p := m.Spawn("fails", func(p *Process) error { return boom })
	err := m.Run()
	if !errors.Is(err, boom) || !errors.Is(p.Err(), boom) {
		t.Fatalf("err = %v / %v", err, p.Err())
	}
}

func TestFairShareDoublesElapsed(t *testing.T) {
	// The E6 mechanism: two CPU-bound processes on one CPU make each
	// other's elapsed time roughly double. This is where the paper's
	// 103% user-space-logger overhead comes from.
	const work = 20_000_000
	solo := newMachine()
	solo.Spawn("a", func(p *Process) error { p.ChargeUser(work); return nil })
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}
	soloElapsed := solo.Elapsed()

	duo := newMachine()
	duo.Spawn("a", func(p *Process) error { p.ChargeUser(work); return nil })
	duo.Spawn("b", func(p *Process) error { p.ChargeUser(work); return nil })
	if err := duo.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(duo.Elapsed()) / float64(soloElapsed)
	if ratio < 1.9 || ratio > 2.2 {
		t.Fatalf("two-process elapsed ratio = %.2f, want ~2.0", ratio)
	}
	if duo.CtxSwitches < 10 {
		t.Fatalf("context switches = %d, want many", duo.CtxSwitches)
	}
}

func TestRoundRobinInterleavesFairly(t *testing.T) {
	m := newMachine()
	var aDone, bDone sim.Cycles
	m.Spawn("a", func(p *Process) error {
		p.ChargeUser(10_000_000)
		aDone = m.Clock.Now()
		return nil
	})
	m.Spawn("b", func(p *Process) error {
		p.ChargeUser(10_000_000)
		bDone = m.Clock.Now()
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Equal demand: finishes should be within ~2 timeslices.
	diff := aDone - bDone
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*m.Costs.TimeSlice+2*m.Costs.CtxSwitch {
		t.Fatalf("unfair: a@%d b@%d", aDone, bDone)
	}
}

func TestBlockForAccountsWait(t *testing.T) {
	m := newMachine()
	p := m.Spawn("io", func(p *Process) error {
		p.ChargeUser(100)
		p.BlockFor(5000)
		p.ChargeUser(100)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	u, s, w := p.Times()
	if u != 200 || s != 0 {
		t.Fatalf("u/s = %d/%d", u, s)
	}
	if w != 5000 {
		t.Fatalf("wait = %d", w)
	}
	if m.IdleCycles != 5000 {
		t.Fatalf("idle = %d", m.IdleCycles)
	}
}

func TestIOOverlapsWithCompute(t *testing.T) {
	// While one process waits on the disk, another runs: elapsed is
	// max, not sum.
	m := newMachine()
	m.Spawn("io", func(p *Process) error {
		p.BlockFor(10_000_000)
		return nil
	})
	m.Spawn("cpu", func(p *Process) error {
		p.ChargeUser(10_000_000)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() > 11_000_000 {
		t.Fatalf("elapsed = %d; I/O did not overlap compute", m.Elapsed())
	}
}

func TestMultipleBlockedWakeInOrder(t *testing.T) {
	m := newMachine()
	var order []string
	for i, d := range []sim.Cycles{3_000_000, 1_000_000, 2_000_000} {
		name := fmt.Sprintf("p%d", i)
		d := d
		m.Spawn(name, func(p *Process) error {
			p.BlockFor(d)
			order = append(order, p.Name)
			return nil
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[p1 p2 p0]" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestPreemptHookRuns(t *testing.T) {
	m := newMachine()
	var hooks int
	m.Spawn("watched", func(p *Process) error {
		p.OnPreempt = func(*Process) error { hooks++; return nil }
		p.ChargeUser(m.Costs.TimeSlice * 5)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks < 4 {
		t.Fatalf("preempt hook ran %d times, want >= 4", hooks)
	}
}

func TestPreemptHookKills(t *testing.T) {
	// The Cosy watchdog shape: a runaway kernel-mode loop is
	// terminated at a preemption point.
	m := newMachine()
	limit := m.Costs.TimeSlice * 3
	p := m.Spawn("runaway", func(p *Process) error {
		p.OnPreempt = func(p *Process) error {
			if p.KernelStreak() > limit {
				return fmt.Errorf("kernel time %d exceeded limit %d", p.KernelStreak(), limit)
			}
			return nil
		}
		p.EnterKernel()
		for { // infinite kernel loop
			p.Charge(m.Costs.TimeSlice / 2)
		}
	})
	err := m.Run()
	if !errors.Is(err, ErrKilled) || !errors.Is(p.Err(), ErrKilled) {
		t.Fatalf("err = %v", err)
	}
	// The machine must survive and remain usable.
	m.Spawn("after", func(p *Process) error { p.ChargeUser(10); return nil })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelStreakResetsAtEntry(t *testing.T) {
	m := newMachine()
	m.Spawn("p", func(p *Process) error {
		p.EnterKernel()
		p.Charge(500)
		if p.KernelStreak() != 500 {
			t.Errorf("streak = %d", p.KernelStreak())
		}
		p.ExitKernel()
		p.EnterKernel()
		if p.KernelStreak() != 0 {
			t.Errorf("streak not reset: %d", p.KernelStreak())
		}
		p.ExitKernel()
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedKernelMode(t *testing.T) {
	m := newMachine()
	p := m.Spawn("p", func(p *Process) error {
		p.EnterKernel()
		p.EnterKernel()
		p.Charge(100)
		p.ExitKernel()
		if !p.InKernel() {
			t.Error("left kernel too early")
		}
		p.Charge(50)
		p.ExitKernel()
		if p.InKernel() {
			t.Error("still in kernel")
		}
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	_, s, _ := p.Times()
	if s != 150 {
		t.Fatalf("sys = %d", s)
	}
}

func TestExitKernelUnderflowPanics(t *testing.T) {
	m := newMachine()
	m.Spawn("p", func(p *Process) error {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		p.ExitKernel()
		return nil
	})
	_ = m.Run()
}

func TestSpawnDuringRun(t *testing.T) {
	m := newMachine()
	var childRan bool
	m.Spawn("parent", func(p *Process) error {
		m.Spawn("child", func(c *Process) error {
			childRan = true
			c.ChargeUser(10)
			return nil
		})
		p.ChargeUser(10)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestSpinLock(t *testing.T) {
	m := newMachine()
	var events []bool
	l := &SpinLock{Name: "dcache_lock"}
	l.Probe = func(p *Process, acquire bool, lk *SpinLock) { events = append(events, acquire) }
	m.Spawn("p", func(p *Process) error {
		p.EnterKernel()
		l.Lock(p)
		l.Unlock(p)
		l.Lock(p)
		l.Unlock(p)
		p.ExitKernel()
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d", l.Acquisitions)
	}
	if fmt.Sprint(events) != "[true false true false]" {
		t.Fatalf("probe events = %v", events)
	}
}

func TestSpinLockMisuse(t *testing.T) {
	m := newMachine()
	m.Spawn("p", func(p *Process) error {
		l := &SpinLock{Name: "x"}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unlock of unheld did not panic")
				}
			}()
			l.Unlock(p)
		}()
		l.Lock(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive lock did not panic")
				}
			}()
			l.Lock(p)
		}()
		return nil
	})
	_ = m.Run()
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlock not detected")
		}
	}()
	m := newMachine()
	// A process that yields forever cannot exist in this cooperative
	// model, so simulate a lost wakeup by spawning and never running.
	m.procs[999] = &Process{PID: 999, Name: "ghost", state: stateBlocked}
	m.Spawn("real", func(p *Process) error { return nil })
	_ = m.Run()
}

func TestUserAddressSpacesIsolated(t *testing.T) {
	m := newMachine()
	m.Spawn("a", func(p *Process) error {
		base, err := p.UAS.MapRegion(1, 3) // PermRW
		if err != nil {
			return err
		}
		return p.UAS.WriteBytes(base, []byte("private"))
	})
	m.Spawn("b", func(p *Process) error {
		// Same VA range is unmapped in this process's space.
		if err := p.UAS.ReadBytes(0x10000, make([]byte, 1)); err == nil {
			t.Error("process b read a's memory")
		}
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []sim.Cycles{50, 10, 30, 10, 20}
	for _, tt := range times {
		h.push(event{when: tt})
	}
	var got []sim.Cycles
	for h.Len() > 0 {
		got = append(got, h.pop().when)
	}
	want := []sim.Cycles{10, 10, 20, 30, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v", got)
		}
	}
}

func TestEventHeapFIFOTiebreak(t *testing.T) {
	var h eventHeap
	p1, p2 := &Process{PID: 1}, &Process{PID: 2}
	h.push(event{when: 5, proc: p1})
	h.push(event{when: 5, proc: p2})
	if h.pop().proc != p1 || h.pop().proc != p2 {
		t.Fatal("equal-time events not FIFO")
	}
}

func TestChargeSysCountsAsSystemInUserMode(t *testing.T) {
	m := newMachine()
	p := m.Spawn("p", func(p *Process) error {
		p.ChargeSys(333)
		return nil
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	_, s, _ := p.Times()
	if s != 333 {
		t.Fatalf("sys = %d", s)
	}
}
