// Package kernel implements the simulated operating system core: a
// single-CPU machine with a virtual-time clock, processes scheduled
// cooperatively in round-robin with a timeslice, a pending-event queue
// for blocking I/O, and per-process user/system/wait time accounting.
//
// Everything the paper measures is a ratio of elapsed, system, and
// user times, so the machine's one job is to attribute every virtual
// cycle to exactly one of those buckets for exactly one process.
//
// Concurrency model: each Process runs on its own goroutine, but the
// machine enforces strict hand-off — at any instant at most one
// goroutine (either the scheduler loop or the current process) is
// executing. This gives deterministic interleaving and makes all
// shared state effectively single-threaded.
package kernel

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/klog"
	"repro/internal/kperf"
	"repro/internal/mem"
	"repro/internal/ring"
	"repro/internal/sim"
)

// ProbeTap is the kprobe dispatch seam: the machine announces
// tracepoint events through it and charges whatever cycle cost the
// probe subsystem reports, tagged to the probe kperf subsystem. The
// kernel package stays ignorant of kprobe itself; internal/kprobe's
// Manager implements this interface and core wires it in. A nil Tap
// — or a Tap with nothing attached, which must return 0 — costs
// nothing, preserving the zero-cost observability gate.
type ProbeTap interface {
	// CtxSwitch fires on every process-to-process switch, in
	// scheduler context, with the process being switched in.
	CtxSwitch(p *Process) sim.Cycles
	// Fault fires after a page fault has been handled.
	Fault(p *Process, guard, write bool) sim.Cycles
	// DiskWait fires when a process wakes from a disk wait of d
	// cycles.
	DiskWait(p *Process, d sim.Cycles) sim.Cycles
}

// Machine is the simulated computer.
type Machine struct {
	Clock sim.Clock
	Costs sim.Costs
	Phys  *mem.Phys
	// KAS is the kernel address space: allocators carve from it, Cosy
	// shared buffers are mapped into it.
	KAS *mem.AddressSpace
	Km  *alloc.Kmalloc
	Vm  *alloc.Vmalloc
	Log *klog.Log

	// Perf is the machine's observability bundle; nil disables all
	// instrumentation. kperf only observes charges the machine makes
	// anyway, so enabling it never moves a simulated cycle.
	Perf *kperf.Set

	// Tap is the kprobe tracepoint seam (nil = no probe subsystem).
	// Unlike Perf, a tap may charge simulated cycles — probe
	// execution is real, measured work — but only when a program is
	// attached at the firing tracepoint.
	Tap ProbeTap

	// Flight is the flight-recorder seam (nil = no recorder). Like
	// Perf it is host-side only and can never move a simulated cycle;
	// see FlightHook.
	Flight FlightHook

	// Trace is the request-tracing seam (nil = no tracer). Like Flight
	// it is host-side only and can never move a simulated cycle; see
	// TraceHook.
	Trace TraceHook

	procs   map[int]*Process
	ready   *ring.Deque[*Process]
	current *Process
	events  eventHeap
	nextPID int
	lastRun *Process

	// CtxSwitches counts process-to-process switches.
	CtxSwitches int64
	// IdleCycles accumulates time when no process was runnable.
	IdleCycles sim.Cycles

	// Memory stats of retired processes, folded in as each process
	// exits so MemTotals covers the machine's whole life.
	retiredTLBHits, retiredTLBMisses uint64
	retiredFaults, retiredPromos     uint64
}

// Config controls machine creation.
type Config struct {
	// PhysBytes bounds physical memory; 0 selects the paper's 884MB.
	PhysBytes int64
	// Costs overrides the cost model; nil selects sim.DefaultCosts.
	Costs *sim.Costs
	// Perf, when set, enables the kperf observability layer.
	Perf *kperf.Set
}

// New creates a machine.
func New(cfg Config) *Machine {
	if cfg.PhysBytes == 0 {
		cfg.PhysBytes = 884 << 20
	}
	costs := sim.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	m := &Machine{
		Costs:   costs,
		Phys:    mem.NewPhys(cfg.PhysBytes),
		Perf:    cfg.Perf,
		procs:   make(map[int]*Process),
		ready:   ring.NewDeque[*Process](16),
		nextPID: 1,
	}
	m.KAS = mem.NewAddressSpace("kernel", m.Phys, &m.Costs)
	m.KAS.Charge = m.ChargeTagged(kperf.SubMem)
	m.Km = alloc.NewKmalloc(m.KAS, &m.Costs, m.ChargeTagged(kperf.SubAlloc))
	m.Vm = alloc.NewVmalloc(m.KAS, &m.Costs, m.ChargeTagged(kperf.SubAlloc))
	m.Log = klog.New(&m.Clock, 0)
	if m.Perf != nil {
		m.Log.Span = func() uint64 {
			if p := m.current; p != nil {
				return p.Perf.CurrentSpan()
			}
			return 0
		}
		m.Log.Req = func() uint64 {
			if p := m.current; p != nil {
				id, _ := p.Perf.Request()
				return id
			}
			return 0
		}
	}
	// The fault probe is installed unconditionally: kperf's Fault is
	// nil-safe and the kprobe tap attaches programs at runtime, so
	// the seam must exist even on machines booted without Perf.
	m.KAS.FaultProbe = func(f *mem.Fault) {
		if p := m.current; p != nil {
			p.Perf.Fault(m.Clock.Now(), f.Guard, f.Access == mem.AccessWrite)
			if f.Guard {
				m.FlightEvent(FlightTrap, fmt.Sprintf("guard fault in %s-%d at %#x", p.Name, p.PID, f.Addr))
			}
			m.probeFault(p, f)
		}
	}
	return m
}

// probeFault dispatches the page-fault tracepoint and charges the
// probe cost to the faulting process as kernel time under the probe
// subsystem.
func (m *Machine) probeFault(p *Process, f *mem.Fault) {
	if m.Tap == nil {
		return
	}
	if c := m.Tap.Fault(p, f.Guard, f.Access == mem.AccessWrite); c > 0 {
		p.Perf.Push(kperf.SubProbe)
		p.ChargeSys(c)
		p.Perf.Pop()
	}
}

// probeDiskWait dispatches the disk-wait tracepoint when a process
// wakes from blocking on disk.
func (m *Machine) probeDiskWait(p *Process, d sim.Cycles) {
	if m.Tap == nil {
		return
	}
	if c := m.Tap.DiskWait(p, d); c > 0 {
		p.Perf.Push(kperf.SubProbe)
		p.ChargeSys(c)
		p.Perf.Pop()
	}
}

// chargeCurrent attributes cycles from subsystems (MMU, allocators) to
// whatever process is running, in its current mode; charges with no
// current process (machine setup) advance the clock as system time of
// nobody.
func (m *Machine) chargeCurrent(c sim.Cycles) {
	if p := m.current; p != nil {
		p.Charge(c)
		return
	}
	m.Perf.OnSetup(c)
	m.Clock.Advance(c)
}

// ChargeTagged returns a charge function that attributes through the
// current process with the given kperf subsystem tag. The charge
// itself is identical to chargeCurrent — the tag only routes the
// cycles to the right attribution cell.
func (m *Machine) ChargeTagged(sub kperf.Subsys) func(sim.Cycles) {
	return func(c sim.Cycles) {
		if p := m.current; p != nil {
			p.Perf.Push(sub)
			p.Charge(c)
			p.Perf.Pop()
			return
		}
		m.Perf.OnSetup(c)
		m.Clock.Advance(c)
	}
}

// Elapsed reports total virtual time since boot.
func (m *Machine) Elapsed() sim.Cycles { return m.Clock.Now() }

// Spawn creates a process executing fn on its own goroutine. The
// process does not run until Run is called. Its user address space is
// created with a stack/heap region already mapped.
func (m *Machine) Spawn(name string, fn func(*Process) error) *Process {
	p := &Process{
		M:      m,
		PID:    m.nextPID,
		Name:   name,
		resume: make(chan struct{}),
		yield:  make(chan yieldKind),
		state:  stateReady,
		bonus:  defaultBonus,
	}
	m.nextPID++
	p.UAS = mem.NewAddressSpace(fmt.Sprintf("user-%s-%d", name, p.PID), m.Phys, &m.Costs)
	p.UAS.Charge = p.Charge
	if m.Perf != nil {
		p.Perf = m.Perf.NewProc(p.PID, name)
		p.UAS.Charge = func(c sim.Cycles) {
			p.Perf.Push(kperf.SubMem)
			p.Charge(c)
			p.Perf.Pop()
		}
	}
	p.UAS.FaultProbe = func(f *mem.Fault) {
		p.Perf.Fault(m.Clock.Now(), f.Guard, f.Access == mem.AccessWrite)
		if f.Guard {
			m.FlightEvent(FlightTrap, fmt.Sprintf("guard fault in %s-%d at %#x", p.Name, p.PID, f.Addr))
		}
		m.probeFault(p, f)
	}
	m.procs[p.PID] = p
	m.ready.PushBack(p)
	go p.top(fn)
	return p
}

// Run drives the machine until every spawned process has finished.
// It returns the first process error encountered (processes killed by
// the watchdog report that as their error), though all processes run
// to completion regardless.
func (m *Machine) Run() error {
	var firstErr error
	for len(m.procs) > 0 {
		m.deliverDue()
		if m.ready.Len() == 0 {
			if m.events.Len() == 0 {
				panic("kernel: deadlock - processes alive but nothing runnable and no pending events")
			}
			ev := m.events.pop()
			if ev.when > m.Clock.Now() {
				gap := ev.when - m.Clock.Now()
				m.IdleCycles += gap
				m.Perf.OnIdle(gap)
				m.Clock.AdvanceTo(ev.when)
				m.FlightTick()
			}
			ev.proc.wake()
			continue
		}
		p, _ := m.ready.PopFront()
		if p.state != stateReady {
			continue
		}
		m.dispatch(p)
		m.FlightTick()
		switch p.state {
		case stateDone:
			if p.err != nil && firstErr == nil {
				firstErr = fmt.Errorf("process %s: %w", p.Name, p.err)
			}
			m.retireMemStats(p.UAS)
			delete(m.procs, p.PID)
		case stateReady:
			m.ready.PushBack(p)
		case stateBlocked:
			// Wake event already queued by BlockFor.
		}
	}
	m.FlightEvent(FlightRunEnd, "")
	return firstErr
}

// dispatch switches to p and runs it until it yields.
func (m *Machine) dispatch(p *Process) {
	if m.lastRun != p && m.lastRun != nil {
		m.CtxSwitches++
		m.Clock.Advance(m.Costs.CtxSwitch)
		p.sysCycles += m.Costs.CtxSwitch
		p.Perf.Push(kperf.SubSched)
		p.Perf.OnCycles(m.Costs.CtxSwitch, true)
		m.traceCharge(p, m.Costs.CtxSwitch, true)
		p.Perf.Pop()
		p.UAS.TLBFlush()
		m.KAS.TLBFlush()
		if m.Tap != nil {
			// Scheduler context: charge like the switch itself —
			// advance the clock and bill the incoming process's
			// system time directly (ChargeSys would preempt here).
			if c := m.Tap.CtxSwitch(p); c > 0 {
				m.Clock.Advance(c)
				p.sysCycles += c
				p.Perf.Push(kperf.SubProbe)
				p.Perf.OnCycles(c, true)
				m.traceCharge(p, c, true)
				p.Perf.Pop()
			}
		}
	}
	m.lastRun = p
	m.current = p
	p.state = stateRunning
	p.sliceLeft = p.sliceLen()
	start := m.Clock.Now()
	p.resume <- struct{}{}
	<-p.yield
	m.current = nil
	p.Perf.SchedSpan(start, m.Clock.Now())
}

// runnableOthers reports whether any process other than the current
// one is ready to run (the preemption condition).
func (m *Machine) runnableOthers() bool {
	for i := 0; i < m.ready.Len(); i++ {
		if m.ready.At(i).state == stateReady {
			return true
		}
	}
	return false
}

// addEvent queues a wakeup for proc at time when.
func (m *Machine) addEvent(when sim.Cycles, proc *Process) {
	m.events.push(event{when: when, proc: proc})
}

// deliverDue wakes every process whose event time has passed. The
// scheduler loop calls it before dispatching, and preemption points
// call it from process context so a spinning process cannot starve a
// sleeper whose I/O already completed (only one goroutine runs at a
// time, so this is safe).
func (m *Machine) deliverDue() {
	for {
		ev, ok := m.events.peek()
		if !ok || ev.when > m.Clock.Now() {
			return
		}
		m.events.pop()
		ev.proc.wake()
	}
}

// Procs reports the number of live processes.
func (m *Machine) Procs() int { return len(m.procs) }

// retireMemStats folds an exiting process's address-space counters
// into the machine totals before the process is forgotten.
func (m *Machine) retireMemStats(as *mem.AddressSpace) {
	m.retiredTLBHits += as.TLBHits
	m.retiredTLBMisses += as.TLBMisses
	m.retiredFaults += as.Faults
	m.retiredPromos += as.GuardPromos
}

// MemTotals aggregates TLB/fault/guard-promotion counts over the
// kernel address space and every user address space, including
// processes that already exited.
func (m *Machine) MemTotals() (tlbHits, tlbMisses, faults, guardPromos uint64) {
	tlbHits = m.retiredTLBHits + m.KAS.TLBHits
	tlbMisses = m.retiredTLBMisses + m.KAS.TLBMisses
	faults = m.retiredFaults + m.KAS.Faults
	guardPromos = m.retiredPromos + m.KAS.GuardPromos
	for _, p := range m.procs {
		tlbHits += p.UAS.TLBHits
		tlbMisses += p.UAS.TLBMisses
		faults += p.UAS.Faults
		guardPromos += p.UAS.GuardPromos
	}
	return tlbHits, tlbMisses, faults, guardPromos
}
