package kernel

// SpinLock is a kernel spinlock. On the simulated single-CPU machine
// contention cannot occur (processes hand off cooperatively), so the
// lock models acquisition cost and provides the instrumentation hook
// the event-monitoring evaluation uses on dcache_lock.
type SpinLock struct {
	Name string
	// Probe, if set, is invoked on every acquire (true) and release
	// (false) with the acting process and the lock's identity; the
	// wiring layer points this at kmon's LogEvent without introducing
	// a package dependency.
	Probe func(p *Process, acquire bool, lock *SpinLock)

	held bool
	// Acquisitions counts successful locks, the paper's "this lock
	// was hit an average of 8,805 times a second" metric.
	Acquisitions uint64
}

// Lock acquires the spinlock, charging the cost model via p.
func (l *SpinLock) Lock(p *Process) {
	if l.held {
		panic("kernel: recursive spinlock acquisition of " + l.Name +
			" (single-CPU simulation cannot spin)")
	}
	p.ChargeSys(p.M.Costs.SpinLock)
	l.held = true
	l.Acquisitions++
	if l.Probe != nil {
		l.Probe(p, true, l)
	}
}

// Unlock releases the spinlock.
func (l *SpinLock) Unlock(p *Process) {
	if !l.held {
		panic("kernel: unlock of unheld spinlock " + l.Name)
	}
	p.ChargeSys(p.M.Costs.SpinUnlock)
	l.held = false
	if l.Probe != nil {
		l.Probe(p, false, l)
	}
}

// Held reports whether the lock is currently held.
func (l *SpinLock) Held() bool { return l.held }
