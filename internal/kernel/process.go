package kernel

import (
	"errors"
	"fmt"

	"repro/internal/kperf"
	"repro/internal/mem"
	"repro/internal/sim"
)

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

type yieldKind int

const (
	yPreempted yieldKind = iota
	yBlocked
	yDone
)

// ErrKilled is wrapped by the error of a process terminated by Kill
// (e.g. the Cosy watchdog).
var ErrKilled = errors.New("kernel: process killed")

// killPanic is the sentinel carried by the panic that unwinds a
// killed process.
type killPanic struct{ reason string }

// Process is one simulated process. Methods on Process must only be
// called from the process's own goroutine while it is the current
// process (i.e., from inside the fn passed to Spawn), except for
// Err/Times/State accessors used after Run returns.
type Process struct {
	M    *Machine
	PID  int
	Name string
	// UAS is the process's user address space.
	UAS *mem.AddressSpace

	// Perf is the process's kperf state (nil when the machine was
	// built without instrumentation; every method is nil-safe).
	Perf *kperf.ProcState

	// OnPreempt, if set, runs every time the process is about to be
	// scheduled out (timeslice expiry). This is the hook the Cosy
	// watchdog uses: "a preemptive kernel that checks the running
	// time of a Cosy process inside the kernel every time it is
	// scheduled out" (§2.3). Returning an error kills the process
	// with that error.
	OnPreempt func(p *Process) error

	inKernel     int // kernel-mode nesting depth
	kernelStreak sim.Cycles

	// bonus is the dynamic-priority bonus modeled on the Linux 2.6
	// O(1) scheduler: processes that sleep earn longer timeslices,
	// processes that burn full slices lose them. This is what makes a
	// busy-polling logger cheaper to run beside than an I/O-pacing
	// one (experiment E6's 61% vs 103%).
	bonus int

	userCycles, sysCycles, waitCycles sim.Cycles

	sliceLeft sim.Cycles
	state     procState
	resume    chan struct{}
	yield     chan yieldKind
	err       error
}

// top is the goroutine body wrapping the user function.
func (p *Process) top(fn func(*Process) error) {
	<-p.resume
	func() {
		defer func() {
			if r := recover(); r != nil {
				if kp, ok := r.(killPanic); ok {
					p.err = fmt.Errorf("%w: %s", ErrKilled, kp.reason)
					p.M.FlightEvent(FlightKill,
						fmt.Sprintf("%s-%d: %s", p.Name, p.PID, kp.reason))
					return
				}
				panic(r)
			}
		}()
		p.err = fn(p)
	}()
	p.state = stateDone
	p.yield <- yDone
}

// Err returns the process's exit error. Valid after Run completes.
func (p *Process) Err() error { return p.err }

// Times reports accumulated user, system, and wait (blocked on I/O)
// cycles.
func (p *Process) Times() (user, system, wait sim.Cycles) {
	return p.userCycles, p.sysCycles, p.waitCycles
}

// InKernel reports whether the process is currently in kernel mode.
func (p *Process) InKernel() bool { return p.inKernel > 0 }

// KernelStreak reports kernel cycles accumulated since the outermost
// EnterKernel. The Cosy watchdog compares this against
// Costs.MaxKernelCycles.
func (p *Process) KernelStreak() sim.Cycles { return p.kernelStreak }

// EnterKernel switches the process into kernel mode (nested calls
// stack).
func (p *Process) EnterKernel() {
	if p.inKernel == 0 {
		p.kernelStreak = 0
	}
	p.inKernel++
}

// ExitKernel pops one kernel-mode level.
func (p *Process) ExitKernel() {
	if p.inKernel == 0 {
		panic("kernel: ExitKernel without EnterKernel")
	}
	p.inKernel--
}

// Charge attributes c cycles to the process in its current mode,
// advancing the machine clock. Crossing a timeslice boundary yields
// the CPU (and runs the preemption hook).
func (p *Process) Charge(c sim.Cycles) {
	for c > 0 {
		step := c
		if step > p.sliceLeft {
			step = p.sliceLeft
		}
		p.M.Clock.Advance(step)
		if p.inKernel > 0 {
			p.sysCycles += step
			p.kernelStreak += step
		} else {
			p.userCycles += step
		}
		p.Perf.OnCycles(step, p.inKernel > 0)
		p.M.traceCharge(p, step, p.inKernel > 0)
		p.sliceLeft -= step
		c -= step
		if p.sliceLeft == 0 {
			p.preemptPoint()
		}
	}
}

// ChargeUser is a convenience for user-mode compute, asserting the
// process is not in kernel mode.
func (p *Process) ChargeUser(c sim.Cycles) {
	if p.inKernel > 0 {
		panic("kernel: ChargeUser while in kernel mode")
	}
	p.Charge(c)
}

// ChargeSys charges kernel-mode time regardless of current mode
// (interrupt-style accounting).
func (p *Process) ChargeSys(c sim.Cycles) {
	p.M.Clock.Advance(c)
	p.sysCycles += c
	p.Perf.OnCycles(c, true)
	p.M.traceCharge(p, c, true)
	if p.inKernel > 0 {
		p.kernelStreak += c
	}
	p.sliceLeft -= c
	if p.sliceLeft <= 0 {
		p.sliceLeft = 0
		p.preemptPoint()
	}
}

// Dynamic-priority bonus bounds (O(1)-scheduler style).
const (
	minBonus     = 0
	defaultBonus = 5
	maxBonus     = 10
)

// sliceLen scales the quantum by the dynamic priority: bonus 5 gets
// exactly Costs.TimeSlice; CPU hogs (bonus 0) get 2/7 of it, heavy
// sleepers (bonus 10) get 12/7.
func (p *Process) sliceLen() sim.Cycles {
	return p.M.Costs.TimeSlice * sim.Cycles(2+p.bonus) / 7
}

// preemptPoint runs at every timeslice expiry: the preemption hook
// fires, the bonus decays (this process just burned a full slice),
// then the CPU is handed over if anyone else wants it.
func (p *Process) preemptPoint() {
	p.M.FlightTick()
	if p.OnPreempt != nil {
		if err := p.OnPreempt(p); err != nil {
			p.KillErr(err)
		}
	}
	if p.bonus > minBonus {
		p.bonus--
	}
	p.M.deliverDue()
	if p.M.runnableOthers() {
		p.state = stateReady
		p.M.traceReady(p)
		p.yield <- yPreempted
		<-p.resume
		p.state = stateRunning
		p.M.traceRun(p)
	}
	p.sliceLeft = p.sliceLen()
}

// Yield voluntarily gives up the CPU. Unlike blocking, yielding earns
// no priority boost (sched_yield in a spin loop still reads as CPU
// hunger to the 2.6 scheduler).
func (p *Process) Yield() {
	p.M.deliverDue()
	if !p.M.runnableOthers() {
		return
	}
	p.state = stateReady
	p.M.traceReady(p)
	p.yield <- yPreempted
	<-p.resume
	p.state = stateRunning
	p.M.traceRun(p)
	p.sliceLeft = p.sliceLen()
}

// BlockFor suspends the process for d cycles of simulated I/O or
// sleep; the time lands in the wait bucket, not user or system.
func (p *Process) BlockFor(d sim.Cycles) {
	p.BlockOn(kperf.SubKern, d)
}

// BlockOn is BlockFor with a kperf subsystem tag naming what the
// process is waiting on (SubDisk for block I/O); the blocked interval
// appears in the timeline but — like all wait time — advances no CPU
// attribution.
func (p *Process) BlockOn(sub kperf.Subsys, d sim.Cycles) {
	if d <= 0 {
		p.Yield()
		return
	}
	wake := p.M.Clock.Now() + d
	p.M.addEvent(wake, p)
	start := p.M.Clock.Now()
	p.state = stateBlocked
	p.M.traceBlock(p, sub)
	p.yield <- yBlocked
	<-p.resume
	p.state = stateRunning
	p.M.traceRun(p)
	// Sleeper boost: voluntary blocking earns priority.
	p.bonus += 2
	if p.bonus > maxBonus {
		p.bonus = maxBonus
	}
	p.sliceLeft = p.sliceLen()
	p.waitCycles += p.M.Clock.Now() - start
	p.Perf.BlockSpan(sub, start, p.M.Clock.Now())
	if sub == kperf.SubDisk {
		p.M.probeDiskWait(p, p.M.Clock.Now()-start)
	}
}

// wake moves a blocked process back to the run queue. Called by the
// scheduler when its event fires.
func (p *Process) wake() {
	p.state = stateReady
	p.M.traceReady(p)
	p.M.ready.PushBack(p)
}

// Kill terminates the process immediately with the given reason. It
// must be called from the process's own context (typically from an
// OnPreempt hook) and does not return.
func (p *Process) Kill(reason string) {
	panic(killPanic{reason: reason})
}

// KillErr terminates the process with an error's message.
func (p *Process) KillErr(err error) {
	panic(killPanic{reason: err.Error()})
}
