package kernel

import "repro/internal/sim"

// FlightHook is the flight-recorder seam: the machine announces
// scheduler-tick boundaries and notable events through it, host-side
// only. Unlike ProbeTap, a flight hook can never charge cycles — it
// has no way to return a cost — so a machine with a recorder attached
// is bit-identical in simulated time to one without, by construction.
// internal/kflight's Recorder implements this interface structurally
// (kflight imports only kperf and sim, so the kernel stays ignorant of
// the recorder and the recorder of the kernel).
type FlightHook interface {
	// Tick fires at scheduler boundaries: after every dispatch returns
	// to the scheduler loop, after idle gaps, and at every timeslice
	// expiry. The hook decides whether an epoch boundary has passed;
	// ticks are frequent and must be cheap when no boundary has.
	Tick(now sim.Cycles)
	// Event fires on notable occurrences — kills, guard traps,
	// extension deaths, run end — so the recorder can cut a postmortem.
	Event(now sim.Cycles, kind, detail string)
}

// Flight event kinds, the kind strings passed to FlightHook.Event.
const (
	// FlightKill: a process was terminated by Kill/KillErr (watchdog,
	// probe violation unwinding).
	FlightKill = "kill"
	// FlightTrap: a guard (Kefence) page fault fired.
	FlightTrap = "trap"
	// FlightKuDead: a kucode extension died on a runtime check
	// violation; subsequent calls return ErrKuDead.
	FlightKuDead = "kudead"
	// FlightProbeDead: a kprobe program died on a runtime violation.
	FlightProbeDead = "probedead"
	// FlightRunEnd: Machine.Run drained every process.
	FlightRunEnd = "run_end"
)

// FlightTick reports a scheduler boundary to the flight recorder.
// One predictable nil-check when no recorder is attached.
func (m *Machine) FlightTick() {
	if m.Flight != nil {
		m.Flight.Tick(m.Clock.Now())
	}
}

// FlightEvent reports a notable event to the flight recorder.
func (m *Machine) FlightEvent(kind, detail string) {
	if m.Flight != nil {
		m.Flight.Event(m.Clock.Now(), kind, detail)
	}
}
