package kmon

import (
	"fmt"
	"sort"
)

// Violation is one invariant breach found by an on-line monitor.
type Violation struct {
	Obj  uint64
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("object %#x: %s", v.Obj, v.Desc)
}

// RefMonitor verifies that "reference counters are incremented and
// decremented symmetrically": never negative, and zero at destroy.
type RefMonitor struct {
	counts     map[uint64]int64
	violations []Violation
}

// NewRefMonitor creates the monitor; register its Callback with the
// dispatcher.
func NewRefMonitor() *RefMonitor {
	return &RefMonitor{counts: make(map[uint64]int64)}
}

// Callback implements the dispatcher callback.
func (m *RefMonitor) Callback(ev Event) {
	switch ev.Type {
	case EvRefInc:
		m.counts[ev.Obj]++
	case EvRefDec:
		m.counts[ev.Obj]--
		if m.counts[ev.Obj] < 0 {
			m.violations = append(m.violations, Violation{ev.Obj, "reference count went negative"})
		}
	case EvRefDestroy:
		if c := m.counts[ev.Obj]; c != 0 {
			m.violations = append(m.violations,
				Violation{ev.Obj, fmt.Sprintf("destroyed with refcount %d", c)})
		}
		delete(m.counts, ev.Obj)
	}
}

// Violations returns the breaches found so far.
func (m *RefMonitor) Violations() []Violation { return m.violations }

// Live reports objects with a nonzero count (leak candidates).
func (m *RefMonitor) Live() int {
	n := 0
	for _, c := range m.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// LockMonitor verifies that "spinlocks that are locked are later
// unlocked": no double acquire, no release of an unheld lock, and
// nothing held at Finish.
type LockMonitor struct {
	held       map[uint64]bool
	violations []Violation
}

// NewLockMonitor creates the monitor.
func NewLockMonitor() *LockMonitor {
	return &LockMonitor{held: make(map[uint64]bool)}
}

// Callback implements the dispatcher callback.
func (m *LockMonitor) Callback(ev Event) {
	switch ev.Type {
	case EvLockAcquire:
		if m.held[ev.Obj] {
			m.violations = append(m.violations, Violation{ev.Obj, "double acquire"})
		}
		m.held[ev.Obj] = true
	case EvLockRelease:
		if !m.held[ev.Obj] {
			m.violations = append(m.violations, Violation{ev.Obj, "release of unheld lock"})
		}
		delete(m.held, ev.Obj)
	}
}

// Finish flags locks still held at shutdown, in object order so the
// violation report is reproducible.
func (m *LockMonitor) Finish() {
	objs := make([]uint64, 0, len(m.held))
	for obj := range m.held {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		m.violations = append(m.violations, Violation{obj, "still held at shutdown"})
	}
}

// Violations returns the breaches found so far.
func (m *LockMonitor) Violations() []Violation { return m.violations }

// IRQMonitor verifies that "interrupts that are disabled are later
// re-enabled": depth never goes negative and returns to zero.
type IRQMonitor struct {
	depth      map[uint64]int
	violations []Violation
}

// NewIRQMonitor creates the monitor.
func NewIRQMonitor() *IRQMonitor {
	return &IRQMonitor{depth: make(map[uint64]int)}
}

// Callback implements the dispatcher callback.
func (m *IRQMonitor) Callback(ev Event) {
	switch ev.Type {
	case EvIRQDisable:
		m.depth[ev.Obj]++
	case EvIRQEnable:
		m.depth[ev.Obj]--
		if m.depth[ev.Obj] < 0 {
			m.violations = append(m.violations, Violation{ev.Obj, "enable without disable"})
		}
	}
}

// Finish flags CPUs left with interrupts off, in object order so the
// violation report is reproducible.
func (m *IRQMonitor) Finish() {
	objs := make([]uint64, 0, len(m.depth))
	for obj := range m.depth {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		if m.depth[obj] > 0 {
			m.violations = append(m.violations, Violation{obj, "interrupts left disabled"})
		}
	}
}

// Violations returns the breaches found so far.
func (m *IRQMonitor) Violations() []Violation { return m.violations }
