// Package kmon is the event-monitoring framework of §3.3 (Figure 1):
// a log_event call feeds an event dispatcher, which invokes
// registered in-kernel callbacks synchronously and, when enabled,
// pushes the event into a lock-free ring buffer exposed to user space
// through a character device; libkernevents (the Reader type) copies
// entries in bulk and hands them out one by one.
//
// Each event carries the fields the paper specifies: a reference to
// the affected object, an integer event type, and the source file and
// line that triggered it.
package kmon

import (
	"repro/internal/kernel"
	"repro/internal/kperf"
	"repro/internal/ring"
	"repro/internal/sim"
)

// EventType encodes what happened to the object.
type EventType int32

// Event types for the built-in monitors; modules may define their own
// above EvUser.
const (
	EvLockAcquire EventType = iota + 1
	EvLockRelease
	EvRefInc
	EvRefDec
	EvRefDestroy
	EvIRQDisable
	EvIRQEnable
	EvUser EventType = 1000
)

func (t EventType) String() string {
	switch t {
	case EvLockAcquire:
		return "lock-acquire"
	case EvLockRelease:
		return "lock-release"
	case EvRefInc:
		return "ref-inc"
	case EvRefDec:
		return "ref-dec"
	case EvRefDestroy:
		return "ref-destroy"
	case EvIRQDisable:
		return "irq-disable"
	case EvIRQEnable:
		return "irq-enable"
	}
	return "user-event"
}

// Event is one monitoring record. It is fixed-size (the paper:
// "designed to minimize the size of individual log entries"); source
// files are interned into a table and referenced by index.
type Event struct {
	Obj  uint64 // identity of the affected object
	Type EventType
	File FileID
	Line int32
	Time sim.Cycles
}

// EventBytes is the serialized size of one event in the character
// device stream.
const EventBytes = 24

// FileID indexes the monitor's interned source-file table.
type FileID uint16

// Callback is an in-kernel on-line monitor, invoked synchronously by
// the dispatcher. "When high performance is needed, an event monitor
// should be developed as a kernel module and register a callback with
// the dispatcher."
type Callback func(Event)

// Monitor is the event dispatcher plus the optional ring buffer.
type Monitor struct {
	M *kernel.Machine

	// RingEnabled routes events into the ring for user-space
	// consumption. Callbacks always run.
	RingEnabled bool

	Ring *ring.Buffer[Event]

	callbacks []Callback
	files     []string
	fileIdx   map[string]FileID

	// Logged counts LogEvent calls; Enqueued counts ring insertions.
	Logged, Enqueued int64

	nextObj uint64
}

// New creates a monitor with a ring of ringCap entries (power of
// two).
func New(m *kernel.Machine, ringCap int) *Monitor {
	return &Monitor{
		M:       m,
		Ring:    ring.New[Event](ringCap),
		files:   []string{"?"},
		fileIdx: map[string]FileID{"?": 0},
	}
}

// FileID interns a source file name.
func (mon *Monitor) FileID(file string) FileID {
	if id, ok := mon.fileIdx[file]; ok {
		return id
	}
	id := FileID(len(mon.files))
	mon.files = append(mon.files, file)
	mon.fileIdx[file] = id
	return id
}

// FileName resolves an interned id.
func (mon *Monitor) FileName(id FileID) string {
	if int(id) < len(mon.files) {
		return mon.files[id]
	}
	return "?"
}

// Register adds an in-kernel callback.
func (mon *Monitor) Register(cb Callback) {
	mon.callbacks = append(mon.callbacks, cb)
}

// LogEvent dispatches one event on behalf of p, charging the
// dispatcher, per-callback, and enqueue costs. It never blocks
// (ring-full events are dropped and counted), so it is safe from any
// context, including the simulated equivalent of interrupt handlers.
func (mon *Monitor) LogEvent(p *kernel.Process, obj uint64, typ EventType, file FileID, line int32) {
	c := &mon.M.Costs
	p.Perf.Push(kperf.SubMon)
	p.ChargeSys(c.EventDispatch)
	mon.Logged++
	ev := Event{Obj: obj, Type: typ, File: file, Line: line, Time: mon.M.Clock.Now()}
	for _, cb := range mon.callbacks {
		p.ChargeSys(c.EventCallback)
		cb(ev)
	}
	if mon.RingEnabled {
		p.ChargeSys(c.EventEnqueue)
		mon.Ring.TryPush(ev)
		mon.Enqueued++
	}
	p.Perf.Pop()
}

// AttachSpinLock instruments a kernel spinlock so every acquire and
// release emits an event — this is exactly the dcache_lock
// instrumentation of the paper's evaluation. It returns the object id
// assigned to the lock.
func (mon *Monitor) AttachSpinLock(l *kernel.SpinLock, file string, line int32) uint64 {
	fid := mon.FileID(file)
	obj := mon.NewObjID()
	l.Probe = func(p *kernel.Process, acquire bool, lk *kernel.SpinLock) {
		typ := EvLockRelease
		if acquire {
			typ = EvLockAcquire
		}
		mon.LogEvent(p, obj, typ, fid, line)
	}
	return obj
}

// NewObjID hands out a fresh object identity (the simulated analog of
// the void* the paper stores in each event).
func (mon *Monitor) NewObjID() uint64 {
	mon.nextObj++
	return mon.nextObj
}
