package kmon

import (
	"repro/internal/kernel"
	"repro/internal/vfs"
)

// Dev is the character device exposing the ring buffer to user
// space. Reads drain whole events (EventBytes each) in bulk and
// never block: an empty ring returns 0 bytes, which is why the
// paper's polling logger burns a full CPU.
type Dev struct {
	Mon *Monitor
}

// DevRead implements vfs.Device.
func (d *Dev) DevRead(p *kernel.Process, buf []byte) (int, error) {
	n := 0
	for n+EventBytes <= len(buf) {
		ev, ok := d.Mon.Ring.TryPop()
		if !ok {
			break
		}
		encodeEvent(buf[n:], ev)
		n += EventBytes
	}
	return n, nil
}

// DevWrite implements vfs.Device; the event device is read-only.
func (d *Dev) DevWrite(p *kernel.Process, data []byte) (int, error) {
	return 0, vfs.ErrInval
}

// encodeEvent serializes ev into 24 bytes, little endian.
func encodeEvent(b []byte, ev Event) {
	putU64(b[0:], ev.Obj)
	putU32(b[8:], uint32(ev.Type))
	putU32(b[12:], uint32(ev.File)|uint32(uint16(ev.Line))<<16)
	putU64(b[16:], uint64(ev.Time))
}

// DecodeEvent is the inverse of the device's serialization; user
// space (libkernevents) uses it.
func DecodeEvent(b []byte) Event {
	fl := getU32(b[12:])
	return Event{
		Obj:  getU64(b[0:]),
		Type: EventType(getU32(b[8:])),
		File: FileID(fl & 0xFFFF),
		Line: int32(fl >> 16),
		Time: simCycles(getU64(b[16:])),
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func getU32(b []byte) uint32 {
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

var _ vfs.Device = (*Dev)(nil)
