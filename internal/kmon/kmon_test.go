package kmon

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/sys"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
)

func newEnv() (*kernel.Machine, *Monitor) {
	m := kernel.New(kernel.Config{})
	return m, New(m, 1024)
}

func runOn(t *testing.T, m *kernel.Machine, fn func(p *kernel.Process) error) {
	t.Helper()
	m.Spawn("test", fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherInvokesCallbacks(t *testing.T) {
	m, mon := newEnv()
	var got []Event
	mon.Register(func(ev Event) { got = append(got, ev) })
	fid := mon.FileID("dcache.c")
	runOn(t, m, func(p *kernel.Process) error {
		mon.LogEvent(p, 7, EvLockAcquire, fid, 42)
		mon.LogEvent(p, 7, EvLockRelease, fid, 57)
		return nil
	})
	if len(got) != 2 {
		t.Fatalf("callbacks saw %d events", len(got))
	}
	if got[0].Obj != 7 || got[0].Type != EvLockAcquire || got[0].Line != 42 {
		t.Fatalf("event = %+v", got[0])
	}
	if mon.FileName(got[0].File) != "dcache.c" {
		t.Fatalf("file = %q", mon.FileName(got[0].File))
	}
	if mon.Logged != 2 {
		t.Fatalf("Logged = %d", mon.Logged)
	}
}

func TestRingOnlyWhenEnabled(t *testing.T) {
	m, mon := newEnv()
	runOn(t, m, func(p *kernel.Process) error {
		mon.LogEvent(p, 1, EvRefInc, 0, 1)
		if mon.Ring.Len() != 0 {
			t.Error("event entered ring while disabled")
		}
		mon.RingEnabled = true
		mon.LogEvent(p, 1, EvRefInc, 0, 2)
		if mon.Ring.Len() != 1 {
			t.Error("event missing from ring")
		}
		return nil
	})
}

func TestLogEventCostsScaleWithConfig(t *testing.T) {
	// The E6 mechanism: dispatcher alone is cheap; ring adds cost.
	cost := func(ringOn bool, ncb int) int64 {
		m, mon := newEnv()
		mon.RingEnabled = ringOn
		for i := 0; i < ncb; i++ {
			mon.Register(func(Event) {})
		}
		var sys int64
		runOn(t, m, func(p *kernel.Process) error {
			_, s0, _ := p.Times()
			for i := 0; i < 100; i++ {
				mon.LogEvent(p, 1, EvUser, 0, 0)
			}
			_, s1, _ := p.Times()
			sys = int64(s1 - s0)
			return nil
		})
		return sys
	}
	bare := cost(false, 0)
	withRing := cost(true, 0)
	withCb := cost(false, 2)
	if withRing <= bare || withCb <= bare {
		t.Fatalf("costs: bare=%d ring=%d cb=%d", bare, withRing, withCb)
	}
}

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	evs := []Event{
		{Obj: 0xDEADBEEF12345678, Type: EvLockAcquire, File: 3, Line: 1234, Time: 987654321},
		{Obj: 0, Type: EvUser, File: 0, Line: 0, Time: 0},
		{Obj: 1, Type: EvRefDestroy, File: 65535, Line: 32767, Time: 1},
	}
	for _, ev := range evs {
		var buf [EventBytes]byte
		encodeEvent(buf[:], ev)
		got := DecodeEvent(buf[:])
		if got != ev {
			t.Fatalf("round trip: %+v != %+v", got, ev)
		}
	}
}

func TestDevReadDrainsRing(t *testing.T) {
	m, mon := newEnv()
	mon.RingEnabled = true
	dev := &Dev{Mon: mon}
	runOn(t, m, func(p *kernel.Process) error {
		for i := 0; i < 5; i++ {
			mon.LogEvent(p, uint64(i), EvUser, 0, int32(i))
		}
		buf := make([]byte, 3*EventBytes)
		n, err := dev.DevRead(p, buf)
		if err != nil || n != 3*EventBytes {
			t.Errorf("read = %d,%v", n, err)
		}
		if ev := DecodeEvent(buf); ev.Obj != 0 {
			t.Errorf("first event = %+v", ev)
		}
		n, _ = dev.DevRead(p, buf)
		if n != 2*EventBytes {
			t.Errorf("second read = %d", n)
		}
		n, _ = dev.DevRead(p, buf)
		if n != 0 {
			t.Errorf("empty read = %d", n)
		}
		if _, err := dev.DevWrite(p, []byte{1}); err == nil {
			t.Error("write to read-only device succeeded")
		}
		return nil
	})
}

func TestReaderThroughSyscalls(t *testing.T) {
	// Full Figure-1 path: kernel events -> ring -> chardev -> user
	// logger via read syscalls.
	m := kernel.New(kernel.Config{})
	mon := New(m, 1024)
	mon.RingEnabled = true
	fs := memfs.New("root", vfs.NewIOModel(disk.New(disk.IDE7200()), 1024))
	ns := vfs.NewNamespace(fs)
	ns.RegisterDevice("/dev/kernevents", &Dev{Mon: mon})
	k := sys.NewKernel(m, ns)

	var delivered []Event
	m.Spawn("logger", func(p *kernel.Process) error {
		pr := sys.NewProc(k, p)
		r, err := NewReader(pr, "/dev/kernevents", 64)
		if err != nil {
			return err
		}
		// Produce events from kernel context, then consume.
		fid := mon.FileID("test.c")
		p.EnterKernel()
		for i := 0; i < 10; i++ {
			mon.LogEvent(p, uint64(i), EvRefInc, fid, int32(i))
		}
		p.ExitKernel()
		for {
			ev, ok, err := r.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			delivered = append(delivered, ev)
		}
		return r.Close()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 10 {
		t.Fatalf("delivered %d events", len(delivered))
	}
	for i, ev := range delivered {
		if ev.Obj != uint64(i) || ev.Type != EvRefInc {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestReaderBulkCopyUnderWrapAndOverflow interleaves bursts of kernel
// events with bulk reads on a tiny ring, so the ring wraps repeatedly
// and some bursts overflow it. The accounting must stay exact:
// delivered + dropped == logged, every delivered event arrives in
// order, and none is duplicated — drops lose events, never corrupt
// the stream.
func TestReaderBulkCopyUnderWrapAndOverflow(t *testing.T) {
	const ringCap = 8
	m := kernel.New(kernel.Config{})
	mon := New(m, ringCap)
	mon.RingEnabled = true
	fs := memfs.New("root", vfs.NewIOModel(disk.New(disk.IDE7200()), 1024))
	ns := vfs.NewNamespace(fs)
	ns.RegisterDevice("/dev/kernevents", &Dev{Mon: mon})
	k := sys.NewKernel(m, ns)

	// Bursts sized around the ring: some fit exactly, some wrap the
	// cursor, some overflow and must drop (burst - ringCap each).
	bursts := []int{3, 8, 5, 13, 1, 8, 20, 7}
	var delivered []Event
	m.Spawn("logger", func(p *kernel.Process) error {
		pr := sys.NewProc(k, p)
		// Batch of 3 events per read: each burst takes several bulk
		// copies, so reads straddle the ring's wrap point.
		r, err := NewReader(pr, "/dev/kernevents", 3)
		if err != nil {
			return err
		}
		fid := mon.FileID("test.c")
		seq := uint64(0)
		p.EnterKernel()
		for _, n := range bursts {
			for i := 0; i < n; i++ {
				mon.LogEvent(p, seq, EvUser, fid, int32(seq))
				seq++
			}
			p.ExitKernel()
			for {
				ev, ok, err := r.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				delivered = append(delivered, ev)
			}
			p.EnterKernel()
		}
		p.ExitKernel()
		return r.Close()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	wantDrops := int64(0)
	for _, n := range bursts {
		if n > ringCap {
			wantDrops += int64(n - ringCap)
		}
	}
	drops := int64(mon.Ring.Drops.Load())
	if drops != wantDrops {
		t.Fatalf("drops = %d, want exactly %d", drops, wantDrops)
	}
	if got := int64(len(delivered)) + drops; got != mon.Logged {
		t.Fatalf("delivered %d + dropped %d = %d, want logged %d",
			len(delivered), drops, got, mon.Logged)
	}
	// Sequence numbers must be strictly increasing: a repeat would be
	// a duplicated delivery, a reversal a wrap-corrupted copy.
	last := int64(-1)
	for i, ev := range delivered {
		if int64(ev.Obj) <= last {
			t.Fatalf("event %d: obj %d after %d (duplicate or reordered delivery)", i, ev.Obj, last)
		}
		last = int64(ev.Obj)
		if ev.Line != int32(ev.Obj) {
			t.Fatalf("event %d: line %d does not match obj %d (payload corrupted)", i, ev.Line, ev.Obj)
		}
	}
}

func TestAttachSpinLock(t *testing.T) {
	m, mon := newEnv()
	var types []EventType
	mon.Register(func(ev Event) { types = append(types, ev.Type) })
	lock := &kernel.SpinLock{Name: "dcache_lock"}
	mon.AttachSpinLock(lock, "fs/dcache.c", 100)
	runOn(t, m, func(p *kernel.Process) error {
		p.EnterKernel()
		lock.Lock(p)
		lock.Unlock(p)
		p.ExitKernel()
		return nil
	})
	if len(types) != 2 || types[0] != EvLockAcquire || types[1] != EvLockRelease {
		t.Fatalf("types = %v", types)
	}
}

func TestRefMonitor(t *testing.T) {
	rm := NewRefMonitor()
	cb := rm.Callback
	cb(Event{Obj: 1, Type: EvRefInc})
	cb(Event{Obj: 1, Type: EvRefInc})
	cb(Event{Obj: 1, Type: EvRefDec})
	cb(Event{Obj: 1, Type: EvRefDec})
	cb(Event{Obj: 1, Type: EvRefDestroy})
	if len(rm.Violations()) != 0 {
		t.Fatalf("violations on balanced object: %v", rm.Violations())
	}
	cb(Event{Obj: 2, Type: EvRefDec})
	if len(rm.Violations()) != 1 {
		t.Fatal("negative refcount not flagged")
	}
	cb(Event{Obj: 3, Type: EvRefInc})
	cb(Event{Obj: 3, Type: EvRefDestroy})
	if len(rm.Violations()) != 2 {
		t.Fatal("destroy with live refs not flagged")
	}
	// Object 2 is stuck at -1: a leak candidate.
	if rm.Live() != 1 {
		t.Fatalf("live = %d", rm.Live())
	}
}

func TestLockMonitor(t *testing.T) {
	lm := NewLockMonitor()
	lm.Callback(Event{Obj: 1, Type: EvLockAcquire})
	lm.Callback(Event{Obj: 1, Type: EvLockRelease})
	if len(lm.Violations()) != 0 {
		t.Fatal("balanced lock flagged")
	}
	lm.Callback(Event{Obj: 2, Type: EvLockAcquire})
	lm.Callback(Event{Obj: 2, Type: EvLockAcquire})
	if len(lm.Violations()) != 1 {
		t.Fatal("double acquire not flagged")
	}
	lm.Callback(Event{Obj: 2, Type: EvLockRelease})
	lm.Callback(Event{Obj: 3, Type: EvLockRelease})
	if len(lm.Violations()) != 2 {
		t.Fatal("release of unheld not flagged")
	}
	lm.Callback(Event{Obj: 4, Type: EvLockAcquire})
	lm.Finish()
	if len(lm.Violations()) != 3 {
		t.Fatal("held at shutdown not flagged")
	}
}

func TestIRQMonitor(t *testing.T) {
	im := NewIRQMonitor()
	im.Callback(Event{Obj: 0, Type: EvIRQDisable})
	im.Callback(Event{Obj: 0, Type: EvIRQEnable})
	if len(im.Violations()) != 0 {
		t.Fatal("balanced irq flagged")
	}
	im.Callback(Event{Obj: 1, Type: EvIRQEnable})
	if len(im.Violations()) != 1 {
		t.Fatal("enable without disable not flagged")
	}
	im.Callback(Event{Obj: 2, Type: EvIRQDisable})
	im.Finish()
	if len(im.Violations()) != 2 {
		t.Fatal("left disabled not flagged")
	}
}

func TestEventTypeStrings(t *testing.T) {
	if EvLockAcquire.String() != "lock-acquire" || EvUser.String() != "user-event" {
		t.Fatal("names")
	}
}

func TestRingOverflowDropsNotBlocks(t *testing.T) {
	m := kernel.New(kernel.Config{})
	mon := New(m, 16)
	mon.RingEnabled = true
	runOn(t, m, func(p *kernel.Process) error {
		for i := 0; i < 100; i++ {
			mon.LogEvent(p, uint64(i), EvUser, 0, 0)
		}
		return nil
	})
	if mon.Ring.Len() != 16 {
		t.Fatalf("ring len = %d", mon.Ring.Len())
	}
	if mon.Ring.Drops.Load() != 84 {
		t.Fatalf("drops = %d", mon.Ring.Drops.Load())
	}
}
