package kmon

import (
	"repro/internal/sim"
	"repro/internal/sys"
)

// simCycles converts a decoded timestamp.
func simCycles(v uint64) sim.Cycles { return sim.Cycles(v) }

// Reader is libkernevents: the user-space library that "copies log
// entries in bulk from the kernel and then reads them one by one".
// Each refill is a read system call on the character device into a
// user buffer.
type Reader struct {
	pr *sys.Proc
	fd int
	ub sys.UserBuf

	pending []Event
	// Polls counts device reads; EventsRead counts delivered events.
	Polls, EventsRead int64

	// PerEventCPU models the user-side work done per event (decode,
	// format, filter). The paper's logger formats and writes each
	// entry.
	PerEventCPU sim.Cycles
}

// NewReader opens the device at path with a batchEvents-sized user
// buffer.
func NewReader(pr *sys.Proc, path string, batchEvents int) (*Reader, error) {
	fd, err := pr.Open(path, sys.ORdonly)
	if err != nil {
		return nil, err
	}
	ub, err := pr.Mmap(batchEvents * EventBytes)
	if err != nil {
		return nil, err
	}
	return &Reader{pr: pr, fd: fd, ub: ub, PerEventCPU: 150}, nil
}

// Poll issues one non-blocking bulk read, appending any events to the
// pending queue, and reports how many arrived.
func (r *Reader) Poll() (int, error) {
	r.Polls++
	n, err := r.pr.Read(r.fd, r.ub)
	if err != nil {
		return 0, err
	}
	raw, err := r.pr.Peek(r.ub, n)
	if err != nil {
		return 0, err
	}
	count := n / EventBytes
	for i := 0; i < count; i++ {
		r.pending = append(r.pending, DecodeEvent(raw[i*EventBytes:]))
	}
	return count, nil
}

// Next returns the next buffered event, refilling with one poll if
// empty. ok is false when no event is available.
func (r *Reader) Next() (Event, bool, error) {
	if len(r.pending) == 0 {
		if _, err := r.Poll(); err != nil {
			return Event{}, false, err
		}
	}
	if len(r.pending) == 0 {
		return Event{}, false, nil
	}
	ev := r.pending[0]
	r.pending = r.pending[1:]
	r.EventsRead++
	r.pr.P.ChargeUser(r.PerEventCPU)
	return ev, true, nil
}

// Close releases the device descriptor.
func (r *Reader) Close() error { return r.pr.Close(r.fd) }
