// safemodule: the paper's safety toolbox applied to a buggy kernel
// module — Kefence catches a heap overflow at the hardware level,
// KGCC catches the same class of bug (plus an out-of-bounds pointer
// round trip that must NOT be flagged), and the event monitor's
// on-line checkers catch an unbalanced spinlock and a leaked
// reference count.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/kefence"
	"repro/internal/kernel"
	"repro/internal/kgcc"
	"repro/internal/kmon"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/sim"
)

func main() {
	kefenceDemo()
	kgccDemo()
	kmonDemo()
}

func kefenceDemo() {
	fmt.Println("=== Kefence: hardware guard pages ===")
	m := kernel.New(kernel.Config{})
	kef := kefence.New(m.KAS, &m.Costs, nil, m.Log)
	kef.Mode = kefence.ModeCrash
	m.Spawn("module", func(p *kernel.Process) error {
		buf, err := kef.AllocSite(128, "nic_driver.c:88")
		if err != nil {
			return err
		}
		// The driver miscomputes a length and writes one byte past
		// the buffer.
		if err := m.KAS.WriteBytes(buf+128, []byte{0xFF}); err != nil {
			fmt.Printf("  caught: %v\n", err)
		}
		return nil
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	for _, e := range m.Log.Grep("kefence") {
		fmt.Printf("  syslog: %s\n", e.Msg)
	}
	fmt.Println()
}

func kgccDemo() {
	fmt.Println("=== KGCC: compiler-inserted bounds checks ===")
	src := `
int fill(int *tbl, int n) {
	for (int i = 0; i <= n; i++) { tbl[i] = i; }  // off by one
	return tbl[0];
}
int roundtrip(void) {
	int a[8];
	a[2] = 99;
	int *p = a + 30;  // temporarily out of bounds: gets an OOB peer
	int *q = p - 28;  // back inside
	return *q;        // legal: must not be flagged
}
int main() {
	int heap_n = 16;
	int *tbl = malloc(heap_n * 8);
	int ok = roundtrip();
	int r = fill(tbl, heap_n);
	free(tbl);
	return r + ok;
}`
	unit, err := minic.CompileSource(src)
	if err != nil {
		log.Fatal(err)
	}
	stats := kgcc.InstrumentUnit(unit, kgcc.DefaultOptions())
	fmt.Printf("  instrumented: %s\n", stats)

	costs := sim.DefaultCosts()
	as := mem.NewAddressSpace("kgcc", mem.NewPhys(64<<20), &costs)
	ip, err := minic.NewInterp(as, unit)
	if err != nil {
		log.Fatal(err)
	}
	objmap := kgcc.NewMap(&costs, nil)
	kgcc.Attach(ip, objmap)
	_, err = ip.Call("main")
	if errors.Is(err, kgcc.ErrViolation) {
		fmt.Printf("  caught: %v\n", err)
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("  BUG NOT CAUGHT")
	}
	fmt.Printf("  out-of-bounds peers created for legal round trips: %d\n", objmap.OOBCreated)
	fmt.Println()
}

func kmonDemo() {
	fmt.Println("=== event monitor: higher-level invariants ===")
	m := kernel.New(kernel.Config{})
	mon := kmon.New(m, 1024)
	locks := kmon.NewLockMonitor()
	refs := kmon.NewRefMonitor()
	mon.Register(locks.Callback)
	mon.Register(refs.Callback)

	file := mon.FileID("net/socket.c")
	sockLock := mon.NewObjID()
	sockRef := mon.NewObjID()
	m.Spawn("module", func(p *kernel.Process) error {
		// A socket is created, locked, referenced... and the error
		// path forgets both the unlock and the release.
		mon.LogEvent(p, sockRef, kmon.EvRefInc, file, 201)
		mon.LogEvent(p, sockLock, kmon.EvLockAcquire, file, 202)
		mon.LogEvent(p, sockRef, kmon.EvRefInc, file, 210)
		mon.LogEvent(p, sockRef, kmon.EvRefDec, file, 233)
		// error path: returns without unlock/release
		mon.LogEvent(p, sockRef, kmon.EvRefDestroy, file, 250)
		return nil
	})
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	locks.Finish()
	for _, v := range locks.Violations() {
		fmt.Printf("  lock monitor: %s\n", v)
	}
	for _, v := range refs.Violations() {
		fmt.Printf("  refcount monitor: %s\n", v)
	}
}
