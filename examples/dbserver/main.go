// dbserver: the paper's §2.3 application scenario — a database-style
// server with sequential and random access patterns, run unmodified
// through the syscall interface and then "with very minimal code
// changes" as Cosy compounds. Prints the speedups the paper reports
// as 20-80%.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cosy/kext"
	"repro/internal/sim"
	"repro/internal/sys"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultDB()

	type scenario struct {
		name  string
		plain func(pr *sys.Proc) (int64, error)
		cosy  func(pr *sys.Proc, e *kext.Engine) (int64, error)
	}
	scenarios := []scenario{
		{
			"sequential table scan",
			func(pr *sys.Proc) (int64, error) { return workload.SeqScanUser(pr, cfg) },
			func(pr *sys.Proc, e *kext.Engine) (int64, error) { return workload.SeqScanCosy(pr, e, cfg) },
		},
		{
			"random index probes",
			func(pr *sys.Proc) (int64, error) { return workload.RandScanUser(pr, cfg) },
			func(pr *sys.Proc, e *kext.Engine) (int64, error) { return workload.RandScanCosy(pr, e, cfg) },
		},
	}

	for _, sc := range scenarios {
		plain, err := measure(func(s *core.System, pr *sys.Proc) (int64, error) {
			return sc.plain(pr)
		})
		if err != nil {
			log.Fatal(err)
		}
		cosy, err := measure(func(s *core.System, pr *sys.Proc) (int64, error) {
			return sc.cosy(pr, s.CosyEngine(kext.ModeDataSeg))
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(plain-cosy) / float64(plain) * 100
		fmt.Printf("%-24s unmodified %12v   cosy %12v   speedup %.1f%%\n",
			sc.name, plain, cosy, speedup)
	}
	fmt.Println("\npaper (§2.3): \"for CPU bound applications, with very minimal code changes,")
	fmt.Println("we achieved a performance speedup of up to 20-80%\"")
}

// measure runs fn on a fresh system and returns the CPU time of the
// measured section.
func measure(fn func(s *core.System, pr *sys.Proc) (int64, error)) (sim.Cycles, error) {
	cfg := workload.DefaultDB()
	s, err := core.New(core.Options{})
	if err != nil {
		return 0, err
	}
	var cpu sim.Cycles
	s.Spawn("db", func(pr *sys.Proc) error {
		if err := workload.DBSetup(pr, cfg); err != nil {
			return err
		}
		u0, s0, _ := pr.P.Times()
		if _, err := fn(s, pr); err != nil {
			return err
		}
		u1, s1, _ := pr.P.Times()
		cpu = u1 - u0 + s1 - s0
		return nil
	})
	if err := s.Run(); err != nil {
		return 0, err
	}
	return cpu, nil
}
