// Quickstart: boot a simulated system, use the classic syscall
// interface, the consolidated calls, and a Cosy compound compiled
// from marked C code — the three interfaces the paper provides.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cosy/cc"
	"repro/internal/cosy/kext"
	"repro/internal/cosy/lang"
	"repro/internal/sys"
)

// bulkCopy is user code with its bottleneck region marked for Cosy:
// everything between COSY_START and COSY_END executes in the kernel
// with a single boundary crossing.
const bulkCopy = `
int bulk(void) {
	COSY_START;
	char buf[4096];
	int in = sys_open("/data/input.txt", 0);
	int out = sys_creat("/data/copy.txt");
	int total = 0;
	int n = 1;
	while (n > 0) {
		n = sys_read(in, buf, 4096);
		if (n > 0) {
			sys_write(out, buf, n);
			total += n;
		}
	}
	sys_close(in);
	sys_close(out);
	cosy_return(total);
	COSY_END;
	return 0;
}`

func main() {
	s, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	engine := s.CosyEngine(kext.ModeDataSeg)

	s.Spawn("quickstart", func(pr *sys.Proc) error {
		// 1. Classic syscalls.
		if err := pr.Mkdir("/data"); err != nil {
			return err
		}
		fd, err := pr.Creat("/data/input.txt")
		if err != nil {
			return err
		}
		buf, err := pr.Mmap(64 << 10)
		if err != nil {
			return err
		}
		payload := make([]byte, 10_000)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		if err := pr.Poke(buf, payload); err != nil {
			return err
		}
		if _, err := pr.Write(fd, sys.UserBuf{Addr: buf.Addr, Len: len(payload)}); err != nil {
			return err
		}
		if err := pr.Close(fd); err != nil {
			return err
		}
		fmt.Println("wrote /data/input.txt with the classic write(2) path")

		// 2. A consolidated call: one crossing lists the directory
		// with full attributes.
		entries, err := pr.ReaddirPlus("/data")
		if err != nil {
			return err
		}
		for _, e := range entries {
			fmt.Printf("readdirplus: %-12s %6d bytes\n", e.Name, e.Attr.Size)
		}

		// 3. A Cosy compound: compile the marked region and run the
		// whole copy loop in the kernel.
		comp, err := cc.CompileMarked(bulkCopy, "bulk")
		if err != nil {
			return err
		}
		shm, err := engine.NewShm(comp.ShmSize)
		if err != nil {
			return err
		}
		copied, err := engine.Exec(pr, lang.Encode(comp), shm)
		if err != nil {
			return err
		}
		fmt.Printf("cosy compound copied %d bytes with %d in-kernel syscalls and 1 crossing\n",
			copied, engine.Stats.Syscalls)

		a, err := pr.Stat("/data/copy.txt")
		if err != nil {
			return err
		}
		fmt.Printf("copy verified: /data/copy.txt is %d bytes\n", a.Size)
		return nil
	})
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated time: %v\n", s.M.Elapsed())
}
