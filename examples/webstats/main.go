// webstats: a server-side directory indexer — the workload class the
// paper's §2.2 motivates ("long-running server applications can
// easily execute billions of common data-intensive system calls each
// day"). It indexes a document tree twice: with readdir+stat per
// file, then with the consolidated readdirplus call, and reports the
// same elapsed/system/user improvements the paper tabulates.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sys"
	"repro/internal/workload"
)

func main() {
	for _, files := range []int{100, 1000, 10000} {
		cfg := workload.DefaultDirSweep(files)
		oldU, oldS, oldE, err := sweep(cfg, workload.ReaddirStat)
		if err != nil {
			log.Fatal(err)
		}
		newU, newS, newE, err := sweep(cfg, workload.ReaddirPlusSweep)
		if err != nil {
			log.Fatal(err)
		}
		imp := func(a, b sim.Cycles) float64 { return float64(a-b) / float64(a) * 100 }
		fmt.Printf("%6d files: elapsed -%.1f%%  system -%.1f%%  user -%.1f%%\n",
			files, imp(oldE, newE), imp(oldS, newS), imp(oldU, newU))
	}
	fmt.Println("\npaper (§2.2): \"elapsed, system, and user times improved 60.6-63.8%,")
	fmt.Println("55.7-59.3%, and 82.8-84.0%, respectively\"")
}

func sweep(cfg workload.DirSweepConfig,
	fn func(pr *sys.Proc, cfg workload.DirSweepConfig) (int64, error)) (u, s, e sim.Cycles, err error) {

	system, err := core.New(core.Options{CacheBlocks: 1 << 19})
	if err != nil {
		return 0, 0, 0, err
	}
	system.Spawn("indexer", func(pr *sys.Proc) error {
		if err := workload.DirSweepSetup(pr, cfg); err != nil {
			return err
		}
		u0, s0, _ := pr.P.Times()
		t0 := system.M.Clock.Now()
		total, err := fn(pr, cfg)
		if err != nil {
			return err
		}
		if total != workload.ExpectedSweepBytes(cfg) {
			return fmt.Errorf("index total %d, want %d", total, workload.ExpectedSweepBytes(cfg))
		}
		u1, s1, _ := pr.P.Times()
		u, s, e = u1-u0, s1-s0, system.M.Clock.Now()-t0
		return nil
	})
	if err := system.Run(); err != nil {
		return 0, 0, 0, err
	}
	return u, s, e, nil
}
