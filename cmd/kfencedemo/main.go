// Command kfencedemo demonstrates Kefence catching a kernel buffer
// overflow: a buggy module writes one byte past its allocation and
// the guardian PTE traps it, in the configured mode.
//
// Usage:
//
//	kfencedemo [-mode crash|ro|rw] [-underflow]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kefence"
	"repro/internal/kernel"
)

func main() {
	modeFlag := flag.String("mode", "crash", "overflow policy: crash, ro (log, map read-only), rw (log, map read-write)")
	underflow := flag.Bool("underflow", false, "place the guard before the buffer (catch underflows)")
	flag.Parse()

	mode := kefence.ModeCrash
	switch *modeFlag {
	case "crash":
	case "ro":
		mode = kefence.ModeLogRO
	case "rw":
		mode = kefence.ModeLogRW
	default:
		fmt.Fprintln(os.Stderr, "kfencedemo: unknown mode", *modeFlag)
		os.Exit(2)
	}

	m := kernel.New(kernel.Config{})
	kef := kefence.New(m.KAS, &m.Costs, nil, m.Log)
	kef.Mode = mode
	kef.GuardBefore = *underflow

	m.Spawn("buggy-module", func(p *kernel.Process) error {
		buf, err := kef.AllocSite(100, "buggy.c:17")
		if err != nil {
			return err
		}
		fmt.Printf("module allocated 100 bytes at %#x (guarded)\n", uint64(buf))

		// In-bounds accesses are untouched.
		if err := m.KAS.WriteBytes(buf, make([]byte, 100)); err != nil {
			return fmt.Errorf("in-bounds write failed: %w", err)
		}
		fmt.Println("in-bounds write of all 100 bytes: ok")

		// The bug.
		target := buf + 100
		if *underflow {
			target = buf - 1
		}
		err = m.KAS.WriteBytes(target, []byte{0x41})
		switch {
		case err != nil:
			fmt.Printf("out-of-bounds write stopped: %v\n", err)
		default:
			fmt.Println("out-of-bounds write continued (log-and-continue mode)")
		}
		return nil
	})
	if err := m.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "kfencedemo:", err)
		os.Exit(1)
	}

	fmt.Println("\nsyslog:")
	for _, e := range m.Log.Entries() {
		fmt.Println(" ", e)
	}
	fmt.Printf("\n%d overflow report(s); mode %s\n", len(kef.Reports()), kef.Mode)
}
