// Command benchdiff compares two BENCH_repro.json documents
// metric-by-metric and exits nonzero on regressions, turning the
// bench trajectory into an enforced CI gate.
//
//	benchdiff [flags] BASE CURRENT
//
// BASE and CURRENT are BENCH_repro.json paths; a directory means the
// BENCH_repro.json inside it. Only deterministic simulated metrics
// gate (cycle counts, kperf counters/gauges/histograms, kflight
// summaries); volatile fields — timestamps, wall-clock seconds, host
// provenance, micro-benchmark ns/op — are ignored unless -volatile.
//
// Exit codes: 0 no regressions, 1 regressions found, 2 usage or I/O
// error.
//
// Flags:
//
//	-rel F         global relative tolerance (default 0: bit-identical)
//	-tol P=F       per-path-prefix tolerance, repeatable
//	               (e.g. -tol E2/kflight=0.01)
//	-volatile      also report volatile-metric changes (informational)
//	-v             list non-regression diffs too
//	-json          emit the report as JSON instead of text
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// tolFlags collects repeated -tol prefix=rel pairs.
type tolFlags map[string]float64

func (t tolFlags) String() string { return fmt.Sprint(map[string]float64(t)) }

func (t tolFlags) Set(s string) error {
	prefix, val, ok := strings.Cut(s, "=")
	if !ok || prefix == "" {
		return fmt.Errorf("want prefix=reltol, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f < 0 {
		return fmt.Errorf("bad tolerance in %q", s)
	}
	t[prefix] = f
	return nil
}

func main() {
	rel := flag.Float64("rel", 0, "global relative tolerance for deterministic metrics")
	tols := tolFlags{}
	flag.Var(tols, "tol", "per-path-prefix tolerance, prefix=reltol (repeatable)")
	volatile := flag.Bool("volatile", false, "also report volatile-metric changes")
	verbose := flag.Bool("v", false, "list non-regression diffs too")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASE CURRENT")
		flag.PrintDefaults()
		os.Exit(2)
	}

	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	rep := bench.DiffRepro(base, cur, bench.DiffOptions{
		RelTol:          *rel,
		PrefixTol:       tols,
		IncludeVolatile: *volatile,
	})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Format(os.Stdout, *verbose || *volatile)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// load reads a repro document; a directory selects its
// BENCH_repro.json.
func load(path string) (*bench.Repro, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, "BENCH_repro.json")
	}
	return bench.ReadRepro(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
