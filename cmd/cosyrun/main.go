// Command cosyrun compiles a COSY_START/COSY_END-marked C function
// with Cosy-GCC and executes the compound in the simulated kernel.
//
// Usage:
//
//	cosyrun [-fn name] [-dump] [-mode isolated|data] file.c
//
// The simulated machine boots with an empty root file system; the
// marked region typically creates its own files (see
// examples/quickstart for a ready-made program).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cosy/cc"
	"repro/internal/cosy/kext"
	"repro/internal/cosy/lang"
	"repro/internal/sys"
)

func main() {
	fn := flag.String("fn", "main", "function containing the marked region")
	dump := flag.Bool("dump", false, "print the compiled compound before running")
	mode := flag.String("mode", "data", "protection mode: isolated or data")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cosyrun [-fn name] [-dump] [-mode isolated|data] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	comp, err := cc.CompileMarked(string(src), *fn)
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(comp.Dump())
	}

	m := kext.ModeDataSeg
	if *mode == "isolated" {
		m = kext.ModeIsolated
	}
	s, err := core.New(core.Options{})
	if err != nil {
		fatal(err)
	}
	e := s.CosyEngine(m)
	var result int64
	s.Spawn("cosyrun", func(pr *sys.Proc) error {
		shm, err := e.NewShm(comp.ShmSize + 64)
		if err != nil {
			return err
		}
		result, err = e.Exec(pr, lang.Encode(comp), shm)
		return err
	})
	if err := s.Run(); err != nil {
		fatal(err)
	}
	fmt.Printf("compound returned %d\n", result)
	fmt.Printf("stats: %d ops executed, %d in-kernel syscalls, %d boundary crossing(s), mode %s\n",
		e.Stats.Ops, e.Stats.Syscalls, s.K.Calls[sys.NrRingEnter], m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosyrun:", err)
	os.Exit(1)
}
