// A self-contained marked region: creates a file, writes a pattern,
// reads it back, and returns the byte count. Run with:
//   go run ./cmd/cosyrun -fn main -dump cmd/cosyrun/testdata/bulk.c
int main(void) {
	COSY_START;
	char buf[1024];
	int fd = sys_creat("/scratch.bin");
	for (int i = 0; i < 1024; i++) { buf[i] = i % 251; }
	int w = sys_write(fd, buf, 1024);
	sys_close(fd);
	int rfd = sys_open("/scratch.bin", 0);
	int r = sys_read(rfd, buf, 1024);
	sys_close(rfd);
	cosy_return(w + r);
	COSY_END;
	return 0;
}
