// Command tracetool reproduces the paper's §2.2 methodology: it runs
// an interactive workload under the system-call recorder, builds the
// weighted syscall graph, mines consolidation candidates, and prints
// the projected readdirplus savings.
//
// Usage:
//
//	tracetool [-lists n] [-views n] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sys"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	lists := flag.Int("lists", 400, "ls-style list operations")
	views := flag.Int("views", 200, "file-view operations")
	dot := flag.Bool("dot", false, "print the syscall graph in Graphviz format")
	flag.Parse()

	s, err := core.New(core.Options{})
	if err != nil {
		fatal(err)
	}
	rec := s.EnableTrace()
	cfg := workload.DefaultInteractive()
	cfg.ListOps, cfg.ViewOps = *lists, *views
	s.Spawn("desktop", func(pr *sys.Proc) error {
		if err := workload.InteractiveSetup(pr, cfg); err != nil {
			return err
		}
		_, err := workload.Interactive(pr, cfg)
		return err
	})
	if err := s.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %d system calls, %d bytes across the boundary, %.2fs\n",
		rec.TotalCalls(), rec.TotalBytes(), rec.Duration().Seconds())

	fmt.Println("\ntop consolidation candidates (weighted syscall graph):")
	for i, p := range rec.TopPatterns(uint64(*lists/4+1), 4) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-40s weight %d\n", rec.Graph.Name(p), p.Weight)
	}

	sav := trace.EstimateReaddirplus(rec, s.M.Costs)
	fmt.Printf("\nreaddirplus projection: %s\n", sav)
	orc := trace.EstimateOpenReadClose(rec, s.M.Costs)
	fmt.Printf("open_read_close projection: %s\n", orc)

	if *dot {
		fmt.Println()
		fmt.Print(rec.Graph.DOT(20))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}
