// Command ktap attaches a user-written probe program at a kernel
// tracepoint, runs a workload, and prints the in-kernel aggregation
// maps — the simulated kernel's answer to bpftrace one-liners.
//
// The default program histograms syscall latency and counts calls per
// (pid, syscall):
//
//	ktap -tx 500
//	ktap -t syscall_exit -f myprobe.mc -m lat:hist,calls:hash -json
//	ktap -f myprobe.mc -emit myprobe.kmod      # verify+compile once
//	ktap -module myprobe.kmod                  # attach the artifact
//	ktap -cachedir ~/.ktap-cache               # both, keyed by content hash
//	ktap -list
//
// The probe source is minic; it may only call the helper ABI
// (ctx_pid, ctx_nr, ctx_arg, ctx_cycles, now, map_add, map_hist) and
// must pass the static verifier — try a while loop and watch it get
// rejected before it ever attaches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kprobe"
	"repro/internal/minic"
	"repro/internal/sys"
	"repro/internal/workload"
)

// defaultSrc is the worked example from the README: per-(pid,syscall)
// latency histogram plus call counter, keyed pid*256+nr.
const defaultSrc = `
int probe() {
	int k;
	k = ctx_pid() * 256 + ctx_nr();
	map_hist(0, k, ctx_cycles());
	map_add(1, k, 1);
	return 0;
}
`

func main() {
	tp := flag.String("t", "syscall_exit", "tracepoint to attach at")
	src := flag.String("e", "", "probe program source (default: per-syscall latency histogram)")
	srcFile := flag.String("f", "", "read probe program source from file")
	entry := flag.String("entry", "probe", "entry function name")
	mapsFlag := flag.String("m", "lat:hist,calls:hash", "map declarations, name:kind comma-separated")
	wl := flag.String("workload", "postmark", "workload to probe: postmark or dirsweep")
	tx := flag.Int("tx", 500, "PostMark transactions")
	files := flag.Int("files", 200, "dirsweep files")
	decode := flag.String("decode", "pidnr", "render map keys as pid:syscall (pidnr) or raw integers (raw)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	list := flag.Bool("list", false, "list tracepoints, map kinds, and helpers, then exit")
	emit := flag.String("emit", "", "compile and verify the probe program, write the encoded module to this file, and exit")
	modFile := flag.String("module", "", "attach a pre-compiled module file instead of compiling source")
	cacheDir := flag.String("cachedir", "", "content-hash module cache directory: reuse <hash>.kmod when present, write it after a fresh compile")
	flag.Parse()

	if *list {
		fmt.Println("tracepoints:", strings.Join(kprobe.Tracepoints(), " "))
		fmt.Println("map kinds:   hash (map_add) hist (map_hist)")
		fmt.Println("helpers:     ctx_pid() ctx_nr() ctx_arg() ctx_cycles() now() map_add(id,key,delta) map_hist(id,key,value)")
		return
	}

	tracepoint, err := kprobe.ParseTracepoint(*tp)
	if err != nil {
		fatal(err)
	}
	program := defaultSrc
	if *src != "" {
		program = *src
	}
	if *srcFile != "" {
		b, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		program = string(b)
	}
	var maps []kprobe.MapSpec
	if *mapsFlag != "" {
		for _, d := range strings.Split(*mapsFlag, ",") {
			name, kindName, ok := strings.Cut(d, ":")
			if !ok {
				fatal(fmt.Errorf("map declaration %q is not name:kind", d))
			}
			kind, err := kprobe.ParseMapKind(kindName)
			if err != nil {
				fatal(err)
			}
			maps = append(maps, kprobe.MapSpec{Name: name, Kind: kind})
		}
	}

	spec := kprobe.Spec{Tracepoint: tracepoint, Source: program, Entry: *entry, Maps: maps}

	if *emit != "" {
		mod, err := kprobe.BuildModule(spec)
		if err != nil {
			fatal(err)
		}
		enc := minic.EncodeModule(mod)
		if err := os.WriteFile(*emit, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes, key %s\n", *emit, len(enc), mod.Key)
		return
	}

	if *modFile != "" {
		b, err := os.ReadFile(*modFile)
		if err != nil {
			fatal(err)
		}
		spec = kprobe.Spec{Tracepoint: tracepoint, Module: b, Entry: *entry, Maps: maps}
	} else if *cacheDir != "" {
		// Disk-backed content-hash cache: a prior -emit or run already
		// paid the compile+verify, this run just decodes the artifact.
		path := filepath.Join(*cacheDir, kprobe.SpecKey(spec).String()+".kmod")
		if b, err := os.ReadFile(path); err == nil {
			fmt.Printf("module cache hit: %s\n", path)
			spec = kprobe.Spec{Tracepoint: tracepoint, Module: b, Entry: *entry, Maps: maps}
		} else {
			mod, err := kprobe.BuildModule(spec)
			if err != nil {
				fatal(err)
			}
			enc := minic.EncodeModule(mod)
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("module cache miss: wrote %s\n", path)
			spec = kprobe.Spec{Tracepoint: tracepoint, Module: enc, Entry: *entry, Maps: maps}
		}
	}

	s, err := core.New(core.Options{CacheBlocks: 1024})
	if err != nil {
		fatal(err)
	}
	var done atomic.Bool
	var snaps []kprobe.MapSnapshot
	var readBytes int
	var attachErr error

	// The controller attaches before the workload's first syscall
	// (spawn order is run order), idles while the workload runs, then
	// pulls the whole summary back in one probe_read.
	ctl := s.Spawn("ktap", func(pr *sys.Proc) error {
		id, err := pr.ProbeAttach(spec)
		if err != nil {
			attachErr = err
			done.Store(true)
			return nil
		}
		for !done.Load() {
			pr.P.BlockFor(s.M.Costs.TimeSlice)
		}
		buf, err := pr.Mmap(1 << 20)
		if err != nil {
			return err
		}
		n, err := pr.ProbeRead(id, buf)
		if err != nil {
			return err
		}
		readBytes = n
		raw, err := pr.Peek(buf, n)
		if err != nil {
			return err
		}
		snaps, err = kprobe.DecodeSnapshot(raw)
		return err
	})

	work := s.Spawn(*wl, func(pr *sys.Proc) error {
		defer done.Store(true)
		switch *wl {
		case "postmark":
			cfg := workload.DefaultPostMark()
			cfg.Transactions = *tx
			_, err := workload.PostMark(pr, cfg)
			return err
		case "dirsweep":
			cfg := workload.DefaultDirSweep(*files)
			if err := workload.DirSweepSetup(pr, cfg); err != nil {
				return err
			}
			_, err := workload.ReaddirStat(pr, cfg)
			return err
		default:
			return fmt.Errorf("unknown workload %q (want postmark or dirsweep)", *wl)
		}
	})

	if err := s.Run(); err != nil {
		fatal(err)
	}
	if attachErr != nil {
		fatal(attachErr)
	}
	for _, p := range []interface{ Err() error }{ctl, work} {
		if err := p.Err(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		emitJSON(s, readBytes, snaps, *decode)
		return
	}
	fmt.Printf("probe at %s: fired %d, %d map ops, %d skipped, %d probe cycles; summary %d bytes in one probe_read\n",
		tracepoint, s.Probes.Fired, s.Probes.MapOps, s.Probes.Skipped, s.Probes.Cycles, readBytes)
	for _, m := range snaps {
		fmt.Printf("\n%s (%s):\n", m.Name, m.Kind)
		switch m.Kind {
		case kprobe.MapHash:
			for _, k := range sortedKeys(m.Hash) {
				fmt.Printf("  %-24s %12d\n", keyName(k, *decode), m.Hash[k])
			}
		case kprobe.MapHist:
			fmt.Printf("  %-24s %8s %10s %10s %10s %10s\n", "key", "count", "mean", "p50", "p99", "max")
			for _, k := range sortedHistKeys(m.Hist) {
				e := m.Hist[k]
				fmt.Printf("  %-24s %8d %10.0f %10d %10d %10d\n",
					keyName(k, *decode), e.Count, e.Mean(), e.Quantile(0.5), e.Quantile(0.99), e.Max)
			}
		}
	}
}

// keyName renders a map key, decoding the pid*256+nr convention the
// default program uses.
func keyName(k uint64, decode string) string {
	if decode == "pidnr" {
		nr := int(k & 255)
		if nr < sys.Count() {
			return fmt.Sprintf("pid%d:%s", k>>8, sys.Nr(nr))
		}
	}
	return fmt.Sprintf("%d", k)
}

func sortedKeys(m map[uint64]int64) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedHistKeys(m map[uint64]kprobe.HistEntry) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func emitJSON(s *core.System, readBytes int, snaps []kprobe.MapSnapshot, decode string) {
	type histRow struct {
		Count int64   `json:"count"`
		Mean  float64 `json:"mean"`
		P50   int64   `json:"p50"`
		P99   int64   `json:"p99"`
		Min   int64   `json:"min"`
		Max   int64   `json:"max"`
	}
	type mapOut struct {
		Name string             `json:"name"`
		Kind string             `json:"kind"`
		Hash map[string]int64   `json:"hash,omitempty"`
		Hist map[string]histRow `json:"hist,omitempty"`
	}
	out := struct {
		Fired       int64    `json:"fired"`
		MapOps      int64    `json:"map_ops"`
		Skipped     int64    `json:"skipped"`
		ProbeCycles int64    `json:"probe_cycles"`
		ReadBytes   int      `json:"read_bytes"`
		Maps        []mapOut `json:"maps"`
	}{
		Fired: s.Probes.Fired, MapOps: s.Probes.MapOps, Skipped: s.Probes.Skipped,
		ProbeCycles: int64(s.Probes.Cycles), ReadBytes: readBytes,
	}
	for _, m := range snaps {
		mo := mapOut{Name: m.Name, Kind: m.Kind.String()}
		if m.Hash != nil {
			mo.Hash = make(map[string]int64, len(m.Hash))
			for k, v := range m.Hash {
				mo.Hash[keyName(k, decode)] = v
			}
		}
		if m.Hist != nil {
			mo.Hist = make(map[string]histRow, len(m.Hist))
			for k, e := range m.Hist {
				mo.Hist[keyName(k, decode)] = histRow{
					Count: e.Count, Mean: e.Mean(),
					P50: e.Quantile(0.5), P99: e.Quantile(0.99),
					Min: e.Min, Max: e.Max,
				}
			}
		}
		out.Maps = append(out.Maps, mo)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ktap:", err)
	os.Exit(1)
}
