// Command klint runs the repo's static invariant suite over the
// module: determinism (no wall clock / env / global rand / unsorted
// observable map iteration in simulated-state or serialized-output
// packages), hookpure (cost-free hook seams provably cannot charge
// cycles or mutate kernel state), layering (the explicit
// allowed-import-edge table), and chargecov (no syscall completes a
// boundary crossing for free). See DESIGN.md §11.
//
// Usage:
//
//	klint [-json] [-run name[,name]] [packages]
//
// Packages default to ./... resolved in the current module.
// Diagnostics print one per line as file:line:analyzer:message, or as
// a JSON array with -json (the same schema cmd/kvet -json emits, so
// the two lint CLIs compose in scripts).
//
// Deliberate exceptions are annotated in source:
//
//	//klint:allow <analyzer> <reason>
//
// on the offending line or the line above. An allow without a reason,
// or one that no longer suppresses anything, is itself a diagnostic.
//
// Exit status: 0 clean, 1 diagnostics, 2 load or usage errors —
// matching cmd/kvet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/klint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := klint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *run != "" {
		byName := make(map[string]*klint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "klint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := klint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := klint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "klint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
