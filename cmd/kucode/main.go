// Command kucode runs the paper's experiments and prints
// paper-versus-measured tables. With -md it emits the Markdown body
// of EXPERIMENTS.md.
//
// Usage:
//
//	kucode [-full] [-md] [-perf] [e1 e2 ... e10 | ablations | all]
//
// -perf boots every experiment with kperf instrumentation and prints
// a per-subsystem cycle-attribution summary under each table; the
// simulated results are bit-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "include the slowest configurations (e.g. E1's 100,000-file point)")
	md := flag.Bool("md", false, "emit Markdown (the EXPERIMENTS.md body)")
	perf := flag.Bool("perf", false, "enable kperf instrumentation and print cycle attribution per experiment")
	flag.Parse()

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	want := map[string]bool{}
	for _, w := range wanted {
		want[strings.ToLower(w)] = true
	}
	all := want["all"]

	type exp struct {
		id string
		fn func() (*bench.Table, error)
	}
	exps := []exp{
		{"e1", func() (*bench.Table, error) { return bench.E1(*full, *perf) }},
		{"e2", func() (*bench.Table, error) { return bench.E2(*perf) }},
		{"e3", func() (*bench.Table, error) { return bench.E3(*perf) }},
		{"e4", func() (*bench.Table, error) { return bench.E4(*perf) }},
		{"e5", func() (*bench.Table, error) { return bench.E5(*perf) }},
		{"e6", func() (*bench.Table, error) { return bench.E6(*perf) }},
		{"e7", func() (*bench.Table, error) { return bench.E7(*perf) }},
		{"e8", bench.E8},
		{"e9", func() (*bench.Table, error) { return bench.E9(*perf) }},
		{"e10", func() (*bench.Table, error) { return bench.E10(*perf) }},
	}

	failed := false
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		tbl, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		render(tbl, *md)
		if *perf {
			renderPerf(tbl)
		}
		if !tbl.AllPass() {
			failed = true
		}
	}
	if all || want["ablations"] {
		tables, err := bench.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %v\n", err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			render(tbl, *md)
			if !tbl.AllPass() {
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some rows fell outside their acceptance bands")
		os.Exit(2)
	}
}

func render(t *bench.Table, md bool) {
	if md {
		fmt.Print(t.Markdown())
		return
	}
	fmt.Println(t.String())
}

// renderPerf prints the experiment's cycle attribution by subsystem
// and the accounting identity (attributed+setup+idle == elapsed).
func renderPerf(t *bench.Table) {
	if t.Perf == nil {
		return
	}
	sn := t.Perf
	subs := make([]string, 0, len(sn.SubsystemCycles))
	for s := range sn.SubsystemCycles {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool {
		return sn.SubsystemCycles[subs[i]] > sn.SubsystemCycles[subs[j]]
	})
	fmt.Printf("  kperf: %d cycles attributed (setup %d, idle %d), %d trace records (%d dropped)\n",
		sn.TotalCycles-sn.SetupCycles-sn.IdleCycles, sn.SetupCycles, sn.IdleCycles,
		sn.TraceRecords, sn.TraceDrops)
	for _, s := range subs {
		c := sn.SubsystemCycles[s]
		fmt.Printf("    %-10s %14d cycles (%.1f%%)\n", s, c, 100*float64(c)/float64(sn.TotalCycles))
	}
	if err := sn.CheckTotal(t.PerfElapsed); err != nil {
		fmt.Printf("  kperf identity VIOLATION: %v\n", err)
	} else {
		fmt.Printf("  kperf identity ok: %d cycles == machines' elapsed total\n", sn.TotalCycles)
	}
	fmt.Println()
}
