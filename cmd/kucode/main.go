// Command kucode runs the paper's experiments and prints
// paper-versus-measured tables. With -md it emits the Markdown body
// of EXPERIMENTS.md.
//
// Usage:
//
//	kucode [-full] [-md] [-perf] [e1 e2 ... e12 | ablations | all]
//
// -perf boots every experiment with kperf instrumentation and prints
// a per-subsystem cycle-attribution summary under each table; the
// simulated results are bit-identical with or without it.
//
// It is also the kucode-extension tool: -src compiles a minic file
// through the ku_load admission pipeline (kcheck analysis + KGCC
// instrumentation + bytecode compilation) and either writes the
// encoded module (-emit) or boots a system, loads it, and calls the
// entry function (-call). -module loads a pre-compiled artifact, and
// -cachedir keeps artifacts in a content-hash cache directory so a
// program is verified and compiled once across runs:
//
//	kucode -src filt.c -entry filt -emit filt.kmod
//	kucode -module filt.kmod -entry filt -call 13,40
//	kucode -src filt.c -entry filt -cachedir ~/.kucode-cache -call 13,40
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kgcc"
	"repro/internal/minic"
	"repro/internal/sys"
)

func main() {
	full := flag.Bool("full", false, "include the slowest configurations (e.g. E1's 100,000-file point)")
	md := flag.Bool("md", false, "emit Markdown (the EXPERIMENTS.md body)")
	perf := flag.Bool("perf", false, "enable kperf instrumentation and print cycle attribution per experiment")
	srcFile := flag.String("src", "", "extension mode: compile this minic source file through the ku_load pipeline")
	modFile := flag.String("module", "", "extension mode: load this pre-compiled module file")
	entry := flag.String("entry", "main", "extension entry function")
	checks := flag.String("checks", "kcheck", "KGCC check options: full or kcheck (proof-based elision)")
	emit := flag.String("emit", "", "write the compiled module to this file and exit")
	callArgs := flag.String("call", "", "ku_call the entry with these comma-separated integer arguments")
	cacheDir := flag.String("cachedir", "", "content-hash module cache directory: reuse <hash>.kmod when present, write it after a fresh compile")
	flag.Parse()

	if *srcFile != "" || *modFile != "" {
		extTool(*srcFile, *modFile, *entry, *checks, *emit, *callArgs, *cacheDir)
		return
	}

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	want := map[string]bool{}
	for _, w := range wanted {
		want[strings.ToLower(w)] = true
	}
	all := want["all"]

	type exp struct {
		id string
		fn func() (*bench.Table, error)
	}
	exps := []exp{
		{"e1", func() (*bench.Table, error) { return bench.E1(*full, *perf) }},
		{"e2", func() (*bench.Table, error) { return bench.E2(*perf) }},
		{"e3", func() (*bench.Table, error) { return bench.E3(*perf) }},
		{"e4", func() (*bench.Table, error) { return bench.E4(*perf) }},
		{"e5", func() (*bench.Table, error) { return bench.E5(*perf) }},
		{"e6", func() (*bench.Table, error) { return bench.E6(*perf) }},
		{"e7", func() (*bench.Table, error) { return bench.E7(*perf) }},
		{"e8", bench.E8},
		{"e9", func() (*bench.Table, error) { return bench.E9(*perf) }},
		{"e10", func() (*bench.Table, error) { return bench.E10(*perf) }},
		{"e11", func() (*bench.Table, error) { return bench.E11(*perf) }},
		{"e12", func() (*bench.Table, error) { return bench.E12(*perf) }},
	}

	failed := false
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		tbl, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		render(tbl, *md)
		if *perf {
			renderPerf(tbl)
		}
		if !tbl.AllPass() {
			failed = true
		}
	}
	if all || want["ablations"] {
		tables, err := bench.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %v\n", err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			render(tbl, *md)
			if !tbl.AllPass() {
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some rows fell outside their acceptance bands")
		os.Exit(2)
	}
}

// extTool is the extension workflow: build (or load) a module and
// optionally emit it to disk or run it through ku_load/ku_call.
func extTool(srcFile, modFile, entry, checks, emit, callArgs, cacheDir string) {
	var opts kgcc.Options
	switch checks {
	case "full":
		opts = kgcc.FullChecks()
	case "kcheck":
		opts = kgcc.KcheckOptions()
	default:
		fatal(fmt.Errorf("unknown -checks %q (want full or kcheck)", checks))
	}

	spec := sys.KuSpec{Entry: entry, Checks: opts}
	switch {
	case modFile != "":
		b, err := os.ReadFile(modFile)
		if err != nil {
			fatal(err)
		}
		spec.Module = b
	default:
		b, err := os.ReadFile(srcFile)
		if err != nil {
			fatal(err)
		}
		spec.Source = string(b)
	}

	if cacheDir != "" && spec.Module == nil {
		path := filepath.Join(cacheDir, sys.KuSpecKey(spec).String()+".kmod")
		if b, err := os.ReadFile(path); err == nil {
			fmt.Printf("module cache hit: %s\n", path)
			spec = sys.KuSpec{Entry: entry, Checks: opts, Module: b}
		} else {
			mod, err := sys.BuildKuModule(spec)
			if err != nil {
				fatal(err)
			}
			enc := minic.EncodeModule(mod)
			if err := os.MkdirAll(cacheDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("module cache miss: wrote %s\n", path)
			spec = sys.KuSpec{Entry: entry, Checks: opts, Module: enc}
		}
	}

	if emit != "" {
		var enc []byte
		if spec.Module != nil {
			enc = spec.Module
		} else {
			mod, err := sys.BuildKuModule(spec)
			if err != nil {
				fatal(err)
			}
			enc = minic.EncodeModule(mod)
		}
		if err := os.WriteFile(emit, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes, key %s\n", emit, len(enc), minic.HashBytes(enc))
		return
	}

	if callArgs == "" {
		// Dry run: admission only.
		if _, err := sys.BuildKuModule(spec); err != nil {
			fatal(err)
		}
		fmt.Println("module admitted (use -call to execute, -emit to save)")
		return
	}
	var args []int64
	for _, f := range strings.Split(callArgs, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -call argument %q: %v", f, err))
		}
		args = append(args, v)
	}

	s, err := core.New(core.Options{})
	if err != nil {
		fatal(err)
	}
	var ret int64
	var ext *sys.KuExt
	p := s.Spawn("kucode", func(pr *sys.Proc) error {
		id, err := pr.KuLoad(spec)
		if err != nil {
			return err
		}
		ext, _ = pr.K.KuExt(id)
		ret, err = pr.KuCall(id, args...)
		return err
	})
	if err := s.Run(); err != nil {
		fatal(err)
	}
	if err := p.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s(%s) = %d\n", entry, callArgs, ret)
	fmt.Printf("load: %d insns, cache hit %v; checks inserted %d (elided %d stack, %d cse, %d proven); call: %d cycles, %d checks run\n",
		ext.Insns, ext.CacheHit, ext.Stats.Inserted,
		ext.Stats.ElidedStack, ext.Stats.ElidedCSE, ext.Stats.ElidedProven,
		ext.Cycles, ext.ChecksRun())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kucode:", err)
	os.Exit(1)
}

func render(t *bench.Table, md bool) {
	if md {
		fmt.Print(t.Markdown())
		return
	}
	fmt.Println(t.String())
}

// renderPerf prints the experiment's cycle attribution by subsystem
// and the accounting identity (attributed+setup+idle == elapsed).
func renderPerf(t *bench.Table) {
	if t.Perf == nil {
		return
	}
	sn := t.Perf
	subs := make([]string, 0, len(sn.SubsystemCycles))
	for s := range sn.SubsystemCycles {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool {
		return sn.SubsystemCycles[subs[i]] > sn.SubsystemCycles[subs[j]]
	})
	fmt.Printf("  kperf: %d cycles attributed (setup %d, idle %d), %d trace records (%d dropped)\n",
		sn.TotalCycles-sn.SetupCycles-sn.IdleCycles, sn.SetupCycles, sn.IdleCycles,
		sn.TraceRecords, sn.TraceDrops)
	for _, s := range subs {
		c := sn.SubsystemCycles[s]
		fmt.Printf("    %-10s %14d cycles (%.1f%%)\n", s, c, 100*float64(c)/float64(sn.TotalCycles))
	}
	if err := sn.CheckTotal(t.PerfElapsed); err != nil {
		fmt.Printf("  kperf identity VIOLATION: %v\n", err)
	} else {
		fmt.Printf("  kperf identity ok: %d cycles == machines' elapsed total\n", sn.TotalCycles)
	}
	fmt.Println()
}
