// Command kucode runs the paper's experiments and prints
// paper-versus-measured tables. With -md it emits the Markdown body
// of EXPERIMENTS.md.
//
// Usage:
//
//	kucode [-full] [-md] [e1 e2 ... e8 | ablations | all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "include the slowest configurations (e.g. E1's 100,000-file point)")
	md := flag.Bool("md", false, "emit Markdown (the EXPERIMENTS.md body)")
	flag.Parse()

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	want := map[string]bool{}
	for _, w := range wanted {
		want[strings.ToLower(w)] = true
	}
	all := want["all"]

	type exp struct {
		id string
		fn func() (*bench.Table, error)
	}
	exps := []exp{
		{"e1", func() (*bench.Table, error) { return bench.E1(*full) }},
		{"e2", bench.E2},
		{"e3", bench.E3},
		{"e4", bench.E4},
		{"e5", bench.E5},
		{"e6", bench.E6},
		{"e7", bench.E7},
		{"e8", bench.E8},
	}

	failed := false
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		tbl, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		render(tbl, *md)
		if !tbl.AllPass() {
			failed = true
		}
	}
	if all || want["ablations"] {
		tables, err := bench.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %v\n", err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			render(tbl, *md)
			if !tbl.AllPass() {
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some rows fell outside their acceptance bands")
		os.Exit(2)
	}
}

func render(t *bench.Table, md bool) {
	if md {
		fmt.Print(t.Markdown())
		return
	}
	fmt.Println(t.String())
}
