// Command kvet is a standalone static lint for minic sources, built
// on the kcheck abstract-interpretation engine — the same dataflow
// facts KGCC's check elision and the kprobe verifier consult, exposed
// as a developer tool.
//
// Usage:
//
//	kvet [-json] [-facts] [-elide] file.c ...
//
// For each file kvet compiles and optimizes the unit, analyzes every
// function, and reports warnings with file:line positions:
//
//   - provably out-of-bounds accesses (fire on every execution),
//   - loops with no inferable bound,
//   - unreachable code,
//   - recursive call cycles (unbounded stack).
//
// -json emits the warnings as a JSON array in the schema cmd/klint
// -json uses ({file,line,col,analyzer,message}, analyzer
// "kvet/<code>"), so the two lint CLIs compose in scripts. -facts
// additionally prints each function's fact summary (proven accesses,
// loop bounds, per-access offset ranges) plus the unit's worst-case
// stack depth. -elide prints the KGCC elision report: which runtime
// checks the engine's proofs would remove.
//
// Exit status: 0 clean, 1 warnings, 2 compile or usage errors —
// matching cmd/klint.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kcheck"
	"repro/internal/kgcc"
	"repro/internal/klint"
	"repro/internal/minic"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit warnings as a JSON array (cmd/klint schema)")
	facts := flag.Bool("facts", false, "print per-function analysis summaries and unit stack depth")
	elide := flag.Bool("elide", false, "print the KGCC check-elision report for each file")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvet [-json] [-facts] [-elide] file.c ...")
		os.Exit(2)
	}

	var diags []klint.Diagnostic
	warn := func(path string, line, col int, code, msg string) {
		diags = append(diags, klint.Diagnostic{
			File: path, Line: line, Col: col,
			Analyzer: "kvet/" + code, Message: msg,
		})
		if !*jsonOut {
			if line > 0 {
				fmt.Printf("%s:%d:%d: warning: %s [%s]\n", path, line, col, msg, code)
			} else {
				fmt.Printf("%s: warning: %s [%s]\n", path, msg, code)
			}
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvet: %v\n", err)
			os.Exit(2)
		}
		unit, err := minic.CompileSource(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(2)
		}
		for _, name := range unit.Order {
			minic.Optimize(unit.Fns[name])
		}
		uf := kcheck.AnalyzeUnit(unit)

		for _, name := range unit.Order {
			f := uf.Fns[name]
			if *facts {
				fmt.Print(f.Summary())
			}
			for _, w := range f.Warnings {
				warn(path, w.Pos.Line, w.Pos.Col, w.Code, w.Msg)
			}
		}
		// UnitFacts.Warnings aggregates the per-function warnings
		// (already reported above with positions) plus unit-level ones;
		// only the latter are new here.
		for _, w := range uf.Warnings {
			if w.Code == "recursion" || w.Code == "deep-stack" {
				warn(path, 0, 0, w.Code, w.Msg)
			}
		}
		if *facts && uf.MaxStackBytes >= 0 {
			fmt.Printf("%s: max stack %d bytes via %v\n", path, uf.MaxStackBytes, uf.DeepestPath)
		}
		if *elide {
			// Re-compile: analysis ran on the optimized unit in place,
			// and instrumentation would rewrite it.
			fresh, err := minic.CompileSource(string(src))
			if err == nil {
				_, rep := kgcc.InstrumentUnitReport(fresh, kgcc.KcheckOptions())
				fmt.Printf("%s: check elision with kcheck proofs:\n%s", path, rep)
			}
		}
	}
	if *jsonOut {
		if err := klint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "kvet: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
