// Command benchall runs the full experiment suite through the
// parallel runner and writes BENCH_repro.json: the wall-clock and
// simulated-cycle trajectory of this checkout, comparable across PRs.
//
// Usage:
//
//	benchall [-workers N] [-full] [-serial-compare] [-no-micro] [-no-kperf-gate] [-out BENCH_repro.json]
//
// Each experiment is an independent, deterministic simulated machine,
// so trials fan across GOMAXPROCS without changing a single simulated
// cycle; -serial-compare reruns the suite on one worker to record the
// parallel speedup. The micro section records the substrate
// fast-path numbers (bulk copy vs the seed's map-based baseline,
// translation hit/miss, syscall round trip, scheduler dispatch).
//
// The primary run boots every experiment with kperf instrumentation
// and embeds each experiment's observability snapshot in
// BENCH_repro.json. The kperf gate (on by default) then reruns the
// suite with instrumentation disabled and asserts every experiment's
// simulated user/sys/elapsed cycles are bit-identical both ways —
// the zero-simulated-cost contract of the observability layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	full := flag.Bool("full", false, "include the slowest configurations (E1's 100,000-file point)")
	serialCompare := flag.Bool("serial-compare", false, "also run the suite serially and record the parallel speedup")
	noMicro := flag.Bool("no-micro", false, "skip the substrate micro-benchmarks")
	noKperfGate := flag.Bool("no-kperf-gate", false, "skip the kperf-off rerun that asserts instrumentation moves no simulated cycle")
	out := flag.String("out", "BENCH_repro.json", "output trajectory file")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	doc := bench.NewRepro(w)

	trials := bench.Suite(*full, true)
	fmt.Fprintf(os.Stderr, "running %d experiments (kperf on) on %d workers (GOMAXPROCS=%d)...\n",
		len(trials), w, runtime.GOMAXPROCS(0))
	t0 := time.Now()
	results := bench.RunTrials(trials, w)
	doc.WallSeconds = time.Since(t0).Seconds()
	doc.Experiments = results

	failed := false
	for _, r := range results {
		status := "ok"
		switch {
		case r.Err != "":
			status, failed = "ERROR: "+r.Err, true
		case !r.AllPass:
			status, failed = "MISS", true
		}
		if r.Perf != nil && r.PerfIdentity != "ok" {
			status, failed = "KPERF IDENTITY: "+r.PerfIdentity, true
		}
		fmt.Fprintf(os.Stderr, "  %-4s %8.2fs wall  %14d sim cycles  %s\n",
			r.Name, r.WallSeconds, int64(r.SimElapsed), status)
	}

	if !*noKperfGate {
		fmt.Fprintln(os.Stderr, "rerunning with kperf disabled for the zero-cost gate...")
		off := bench.RunTrials(bench.Suite(*full, false), w)
		gateOK := true
		for i, r := range off {
			on := results[i]
			if r.Err != "" || on.Err != "" {
				continue // already reported above
			}
			if r.SimUser != on.SimUser || r.SimSys != on.SimSys || r.SimElapsed != on.SimElapsed {
				fmt.Fprintf(os.Stderr,
					"KPERF COST VIOLATION: %s cycles differ with instrumentation on vs off (on: user %d sys %d elapsed %d; off: user %d sys %d elapsed %d)\n",
					r.Name, int64(on.SimUser), int64(on.SimSys), int64(on.SimElapsed),
					int64(r.SimUser), int64(r.SimSys), int64(r.SimElapsed))
				failed = true
				gateOK = false
			}
		}
		if gateOK {
			doc.Notes = append(doc.Notes,
				"kperf gate: suite rerun with instrumentation disabled; simulated cycles bit-identical")
		}
	}

	if *serialCompare {
		fmt.Fprintln(os.Stderr, "rerunning serially for the speedup baseline...")
		t1 := time.Now()
		serial := bench.RunTrials(trials, 1)
		doc.SerialWallSeconds = time.Since(t1).Seconds()
		for i, r := range serial {
			if r.SimElapsed != results[i].SimElapsed ||
				r.SimUser != results[i].SimUser || r.SimSys != results[i].SimSys {
				fmt.Fprintf(os.Stderr, "DETERMINISM VIOLATION: %s cycles differ between serial and parallel runs\n", r.Name)
				failed = true
			}
		}
		if doc.WallSeconds > 0 {
			doc.ParallelSpeedup = doc.SerialWallSeconds / doc.WallSeconds
		}
		fmt.Fprintf(os.Stderr, "serial %.2fs vs parallel %.2fs -> speedup %.2fx\n",
			doc.SerialWallSeconds, doc.WallSeconds, doc.ParallelSpeedup)
	}

	if !*noMicro {
		fmt.Fprintln(os.Stderr, "running substrate micro-benchmarks...")
		doc.Micro = bench.MicroSuite()
		for _, m := range doc.Micro {
			if m.BaselineNsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "  %-20s %10.1f ns/op  (map baseline %.1f ns/op, %.2fx)\n",
					m.Name, m.NsPerOp, m.BaselineNsPerOp, m.Speedup)
			} else {
				fmt.Fprintf(os.Stderr, "  %-20s %10.1f ns/op  %d allocs/op\n",
					m.Name, m.NsPerOp, m.AllocsPerOp)
			}
		}
	}

	if runtime.GOMAXPROCS(0) < 2 {
		doc.Notes = append(doc.Notes,
			"host has a single logical CPU: parallel speedup is bounded at ~1x here; rerun on a multi-core host for the fan-out numbers")
	}

	if err := doc.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	if failed {
		os.Exit(2)
	}
}
