// Command kprof boots a kperf-instrumented system, drives one
// workload to completion, and exports the observability data three
// ways: a text summary of cycle attribution (per subsystem, per
// syscall, per process), a Chrome trace_event JSON timeline loadable
// in chrome://tracing or Perfetto, and a folded-stack profile
// consumable by flamegraph.pl or speedscope.
//
// Usage:
//
//	kprof [-workload postmark|compile|interactive|dbscan|monitor]
//	      [-trace FILE.json] [-folded FILE.folded] [-records N] [-top N]
//	      [-proc NAME] [-subsystem NAME] [-req ID] [-logs]
//	      [-flight-epoch CYCLES] [-flight-out FILE.json]
//
// The kflight flight recorder always rides along (it is host-side
// only and moves no simulated cycle): -trace exports include its
// epoch series as Chrome counter tracks (syscall rate, TLB hit ratio,
// per-subsystem cycles) rendered as rows above the span timeline, and
// -flight-out writes the full kflight record — epochs plus postmortem
// dumps — which cmd/ktop replays as a terminal dashboard.
// -flight-epoch overrides the sampling epoch in simulated cycles.
//
// -proc and -subsystem restrict the exported timeline and folded
// stacks to one process (by name or name-pid) and/or one subsystem
// (e.g. disk, probe, kmon), so a flamegraph of just the probe
// overhead or just one process's disk waits is a single flag away.
// The text summary always covers the whole machine.
//
// The ktrace request tracer also always rides along: -trace exports
// include the span graph (requests, nested ops, syscalls, waits) as
// Chrome flow events so Perfetto draws parent/child arrows, -req
// restricts those spans — and -logs output — to one request id, and
// -logs prints the kernel log with each line's owning request, the
// request-scoped view of dmesg.
//
// The "monitor" workload reproduces E6's shape — PostMark with the
// dcache lock instrumented plus a user-space logger process — and is
// the most interesting timeline: two processes interleaving on one
// simulated CPU with disk-wait spans on both.
//
// kprof always verifies the attribution identity before exporting:
// every simulated cycle between boot and completion must be
// attributed to exactly one (process, mode, subsystem, syscall) cell
// (plus the machine's setup and idle sinks), so the folded-stack
// lines sum exactly to the machine's elapsed cycles. A mismatch is a
// bug in the instrumentation and exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kflight"
	"repro/internal/kperf"
	"repro/internal/ktrace"
	"repro/internal/sim"
)

func main() {
	name := flag.String("workload", "postmark", "workload: "+bench.WorkloadNames())
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	foldedOut := flag.String("folded", "", "write a folded-stack cycle profile to this file")
	records := flag.Int("records", 0, "per-process trace shard capacity in records (0: 65536)")
	top := flag.Int("top", 12, "rows per summary section")
	proc := flag.String("proc", "", "restrict trace/folded exports to this process (name or name-pid)")
	subsystem := flag.String("subsystem", "", "restrict trace/folded exports to this subsystem")
	flightEpoch := flag.Int64("flight-epoch", 0, "kflight sampling epoch in simulated cycles (0: default)")
	flightOut := flag.String("flight-out", "", "write the kflight record (epochs + postmortems) to this file for ktop")
	req := flag.Uint64("req", 0, "restrict flow spans and -logs output to this ktrace request id (0: all)")
	logs := flag.Bool("logs", false, "print the kernel log (each line with its owning request id)")
	flag.Parse()
	filter := kperf.TraceFilter{Proc: *proc, Subsystem: *subsystem}

	s, err := run(*name, *records, sim.Cycles(*flightEpoch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
		os.Exit(1)
	}

	sn := s.Perf.Snapshot()
	if err := sn.CheckTotal(s.M.Elapsed()); err != nil {
		fmt.Fprintf(os.Stderr, "kprof: attribution identity violated: %v\n", err)
		os.Exit(2)
	}

	summarize(os.Stdout, *name, sn, *top)
	tsum := s.Ktrace.Summary()
	summarizeTrace(os.Stdout, tsum, *top)
	rec := s.Flight.Record()
	if b, err := json.Marshal(tsum); err == nil {
		rec.Ktrace = b // ride along so ktop -in replays the SLI panel
	}
	fmt.Printf("kflight: %d epochs closed (%d retained), %d postmortems\n",
		rec.Summary.Epochs, len(rec.Epochs), len(rec.Postmortems))

	if *logs {
		printLogs(os.Stdout, s, *req)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
			os.Exit(1)
		}
		if err := s.Perf.WriteChromeTraceExtra(f, filter, rec.CounterTracks(), s.Ktrace.FlowSpans(*req)); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(rec); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write flight record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (replay with: ktop -in %s)\n", *flightOut, *flightOut)
	}
	if *foldedOut != "" {
		if err := os.WriteFile(*foldedOut, []byte(sn.FoldedStacksFiltered(filter)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write folded: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (flamegraph.pl %s > flame.svg, or open in speedscope)\n",
			*foldedOut, *foldedOut)
	}
}

// run boots an instrumented system (perf + flight recorder + request
// tracer) and drives the named workload to completion via the shared
// registry in internal/bench.
func run(name string, records int, flightEpoch sim.Cycles) (*core.System, error) {
	return bench.RunWorkload(name, core.Options{
		Perf:   core.NewPerf(records),
		Flight: &kflight.Config{EpochCycles: flightEpoch},
		Trace:  &ktrace.Config{},
	})
}

// summarize renders the attribution snapshot as text.
func summarize(w *os.File, name string, sn *kperf.Snapshot, top int) {
	fmt.Fprintf(w, "kprof: workload %q, %d simulated cycles (%d setup, %d idle)\n",
		name, sn.TotalCycles, sn.SetupCycles, sn.IdleCycles)
	fmt.Fprintf(w, "trace: %d records captured, %d dropped\n\n", sn.TraceRecords, sn.TraceDrops)

	fmt.Fprintln(w, "cycles by subsystem:")
	for _, kv := range sortedDesc(sn.SubsystemCycles, top) {
		fmt.Fprintf(w, "  %-10s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}

	bySys := map[string]int64{}
	byProc := map[string]int64{}
	for _, row := range sn.Attribution {
		if row.Syscall != "-" {
			bySys[row.Syscall] += row.Cycles
		}
		byProc[row.Process] += row.Cycles
	}
	fmt.Fprintln(w, "\ncycles by syscall (kernel work attributed to the call that caused it):")
	for _, kv := range sortedDesc(bySys, top) {
		fmt.Fprintf(w, "  %-12s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}
	fmt.Fprintln(w, "\ncycles by process:")
	for _, kv := range sortedDesc(byProc, top) {
		fmt.Fprintf(w, "  %-14s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}

	if len(sn.Histograms) > 0 {
		fmt.Fprintln(w, "\nlatency histograms (cycles):")
		names := make([]string, 0, len(sn.Histograms))
		for n := range sn.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := sn.Histograms[n]
			fmt.Fprintf(w, "  %-20s n=%-8d mean=%-10.0f p50<=%-8d p99<=%-10d max=%d\n",
				n, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}

	fmt.Fprintf(w, "\nattribution identity ok: folded-stack lines sum to %d == machine elapsed\n", sn.TotalCycles)
}

// summarizeTrace renders the request tracer's latency SLIs: per
// operation, the count, the quantiles, and which critical-path segment
// dominates the p99 tail.
func summarizeTrace(w *os.File, sum *ktrace.Summary, top int) {
	fmt.Fprintf(w, "\nktrace: %d requests (%d spans", sum.Requests, sum.Spans)
	if sum.ReqDrops+sum.SpanDrops > 0 {
		fmt.Fprintf(w, ", %d req + %d span drops", sum.ReqDrops, sum.SpanDrops)
	}
	fmt.Fprintln(w, ")")
	if sum.IdentityViolations > 0 {
		fmt.Fprintf(w, "  WARNING: %d decomposition identity violations; first: %s\n",
			sum.IdentityViolations, sum.FirstViolation)
	}
	if len(sum.Ops) == 0 {
		fmt.Fprintln(w, "  (no traced operations — workload not instrumented)")
		return
	}
	fmt.Fprintln(w, "request latency by operation (cycles):")
	ops := sum.Ops
	if len(ops) > top {
		ops = ops[:top]
	}
	for i := range ops {
		o := &ops[i]
		fmt.Fprintf(w, "  %-20s n=%-7d p50<=%-9d p90<=%-9d p99<=%-10d max=%-11d tail: %s\n",
			o.Op, o.Count, o.P50, o.P90, o.P99, o.Max, tailLine(o))
	}
}

// tailLine renders one op's p99-tail critical-path decomposition as
// "seg share%" terms, dominant first.
func tailLine(o *ktrace.OpSLI) string {
	var total int64
	for _, v := range o.TailSegs {
		total += v
	}
	if total == 0 {
		return "-"
	}
	type kv struct {
		k string
		v int64
	}
	parts := make([]kv, 0, len(o.TailSegs))
	for k, v := range o.TailSegs {
		if v > 0 {
			parts = append(parts, kv{k, v})
		}
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].v != parts[j].v {
			return parts[i].v > parts[j].v
		}
		return parts[i].k < parts[j].k
	})
	s := ""
	for i, p := range parts {
		if i == 3 {
			break // three biggest segments tell the story
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s %.0f%%", p.k, 100*float64(p.v)/float64(total))
	}
	return s
}

// printLogs dumps the kernel log, one line per entry with its owning
// request id; req != 0 restricts to that request's lines.
func printLogs(w *os.File, s *core.System, req uint64) {
	fmt.Fprintln(w, "\nkernel log (time level [req] message):")
	n := 0
	for _, e := range s.M.Log.Entries() {
		if req != 0 && e.Req != req {
			continue
		}
		tag := "-"
		if e.Req != 0 {
			tag = fmt.Sprintf("req=%d", e.Req)
		}
		fmt.Fprintf(w, "  %12d %-7s [%s] %s\n", e.Time, e.Level, tag, e.Msg)
		n++
	}
	if dropped := s.M.Log.Dropped(); dropped > 0 {
		fmt.Fprintf(w, "  (%d earlier entries dropped from the ring)\n", dropped)
	}
	if n == 0 {
		fmt.Fprintln(w, "  (no matching entries)")
	}
}

type kv struct {
	k string
	v int64
}

func sortedDesc(m map[string]int64, top int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].k < out[j].k
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}
