// Command kprof boots a kperf-instrumented system, drives one
// workload to completion, and exports the observability data three
// ways: a text summary of cycle attribution (per subsystem, per
// syscall, per process), a Chrome trace_event JSON timeline loadable
// in chrome://tracing or Perfetto, and a folded-stack profile
// consumable by flamegraph.pl or speedscope.
//
// Usage:
//
//	kprof [-workload postmark|compile|interactive|dbscan|monitor]
//	      [-trace FILE.json] [-folded FILE.folded] [-records N] [-top N]
//	      [-proc NAME] [-subsystem NAME]
//	      [-flight-epoch CYCLES] [-flight-out FILE.json]
//
// The kflight flight recorder always rides along (it is host-side
// only and moves no simulated cycle): -trace exports include its
// epoch series as Chrome counter tracks (syscall rate, TLB hit ratio,
// per-subsystem cycles) rendered as rows above the span timeline, and
// -flight-out writes the full kflight record — epochs plus postmortem
// dumps — which cmd/ktop replays as a terminal dashboard.
// -flight-epoch overrides the sampling epoch in simulated cycles.
//
// -proc and -subsystem restrict the exported timeline and folded
// stacks to one process (by name or name-pid) and/or one subsystem
// (e.g. disk, probe, kmon), so a flamegraph of just the probe
// overhead or just one process's disk waits is a single flag away.
// The text summary always covers the whole machine.
//
// The "monitor" workload reproduces E6's shape — PostMark with the
// dcache lock instrumented plus a user-space logger process — and is
// the most interesting timeline: two processes interleaving on one
// simulated CPU with disk-wait spans on both.
//
// kprof always verifies the attribution identity before exporting:
// every simulated cycle between boot and completion must be
// attributed to exactly one (process, mode, subsystem, syscall) cell
// (plus the machine's setup and idle sinks), so the folded-stack
// lines sum exactly to the machine's elapsed cycles. A mismatch is a
// bug in the instrumentation and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/kflight"
	"repro/internal/kperf"
	"repro/internal/sim"
	"repro/internal/sys"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "postmark", "workload: postmark, compile, interactive, dbscan, monitor")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	foldedOut := flag.String("folded", "", "write a folded-stack cycle profile to this file")
	records := flag.Int("records", 0, "per-process trace shard capacity in records (0: 65536)")
	top := flag.Int("top", 12, "rows per summary section")
	proc := flag.String("proc", "", "restrict trace/folded exports to this process (name or name-pid)")
	subsystem := flag.String("subsystem", "", "restrict trace/folded exports to this subsystem")
	flightEpoch := flag.Int64("flight-epoch", 0, "kflight sampling epoch in simulated cycles (0: default)")
	flightOut := flag.String("flight-out", "", "write the kflight record (epochs + postmortems) to this file for ktop")
	flag.Parse()
	filter := kperf.TraceFilter{Proc: *proc, Subsystem: *subsystem}

	s, err := run(*name, *records, sim.Cycles(*flightEpoch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
		os.Exit(1)
	}

	sn := s.Perf.Snapshot()
	if err := sn.CheckTotal(s.M.Elapsed()); err != nil {
		fmt.Fprintf(os.Stderr, "kprof: attribution identity violated: %v\n", err)
		os.Exit(2)
	}

	summarize(os.Stdout, *name, sn, *top)
	rec := s.Flight.Record()
	fmt.Printf("kflight: %d epochs closed (%d retained), %d postmortems\n",
		rec.Summary.Epochs, len(rec.Epochs), len(rec.Postmortems))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
			os.Exit(1)
		}
		if err := s.Perf.WriteChromeTraceCounters(f, filter, rec.CounterTracks()); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
			os.Exit(1)
		}
		if err := s.Flight.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write flight record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (replay with: ktop -in %s)\n", *flightOut, *flightOut)
	}
	if *foldedOut != "" {
		if err := os.WriteFile(*foldedOut, []byte(sn.FoldedStacksFiltered(filter)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "kprof: write folded: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (flamegraph.pl %s > flame.svg, or open in speedscope)\n",
			*foldedOut, *foldedOut)
	}
}

// run boots an instrumented system and drives the named workload to
// completion.
func run(name string, records int, flightEpoch sim.Cycles) (*core.System, error) {
	opts := core.Options{
		Perf:   core.NewPerf(records),
		Flight: &kflight.Config{EpochCycles: flightEpoch},
	}
	switch name {
	case "postmark":
		opts.CacheBlocks = 1024 // small cache: keep the disk visible in the timeline
		s, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultPostMark()
		s.Spawn("postmark", func(pr *sys.Proc) error {
			_, err := workload.PostMark(pr, cfg)
			return err
		})
		return s, s.Run()
	case "compile":
		s, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultCompile()
		s.Spawn("compile", func(pr *sys.Proc) error {
			if err := workload.CompileSetup(pr, cfg); err != nil {
				return err
			}
			_, err := workload.Compile(pr, cfg)
			return err
		})
		return s, s.Run()
	case "interactive":
		s, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultInteractive()
		s.Spawn("desktop", func(pr *sys.Proc) error {
			if err := workload.InteractiveSetup(pr, cfg); err != nil {
				return err
			}
			_, err := workload.Interactive(pr, cfg)
			return err
		})
		return s, s.Run()
	case "dbscan":
		s, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultDB()
		s.Spawn("db", func(pr *sys.Proc) error {
			if err := workload.DBSetup(pr, cfg); err != nil {
				return err
			}
			if _, err := workload.SeqScanUser(pr, cfg); err != nil {
				return err
			}
			_, err := workload.RandScanUser(pr, cfg)
			return err
		})
		return s, s.Run()
	case "monitor":
		opts.CacheBlocks = 1024
		s, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		logIO := vfs.NewIOModel(disk.New(disk.SCSI15K()), 4096)
		logIO.DirtyLimit = 16
		if err := s.NS.Mount("/log", memfs.New("logfs", logIO)); err != nil {
			return nil, err
		}
		s.InstrumentDcache()
		s.Mon.RingEnabled = true
		cfg := workload.DefaultPostMark()
		cfg.InitialFiles, cfg.Transactions = 200, 800
		var done atomic.Bool
		s.Spawn("postmark", func(pr *sys.Proc) error {
			defer done.Store(true)
			_, err := workload.PostMark(pr, cfg)
			return err
		})
		logCfg := workload.DefaultLogger()
		s.Spawn("logger", func(pr *sys.Proc) error {
			_, err := workload.Logger(pr, logCfg, done.Load)
			return err
		})
		return s, s.Run()
	}
	return nil, fmt.Errorf("unknown workload %q (want postmark, compile, interactive, dbscan, or monitor)", name)
}

// summarize renders the attribution snapshot as text.
func summarize(w *os.File, name string, sn *kperf.Snapshot, top int) {
	fmt.Fprintf(w, "kprof: workload %q, %d simulated cycles (%d setup, %d idle)\n",
		name, sn.TotalCycles, sn.SetupCycles, sn.IdleCycles)
	fmt.Fprintf(w, "trace: %d records captured, %d dropped\n\n", sn.TraceRecords, sn.TraceDrops)

	fmt.Fprintln(w, "cycles by subsystem:")
	for _, kv := range sortedDesc(sn.SubsystemCycles, top) {
		fmt.Fprintf(w, "  %-10s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}

	bySys := map[string]int64{}
	byProc := map[string]int64{}
	for _, row := range sn.Attribution {
		if row.Syscall != "-" {
			bySys[row.Syscall] += row.Cycles
		}
		byProc[row.Process] += row.Cycles
	}
	fmt.Fprintln(w, "\ncycles by syscall (kernel work attributed to the call that caused it):")
	for _, kv := range sortedDesc(bySys, top) {
		fmt.Fprintf(w, "  %-12s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}
	fmt.Fprintln(w, "\ncycles by process:")
	for _, kv := range sortedDesc(byProc, top) {
		fmt.Fprintf(w, "  %-14s %14d  %5.1f%%\n", kv.k, kv.v, 100*float64(kv.v)/float64(sn.TotalCycles))
	}

	if len(sn.Histograms) > 0 {
		fmt.Fprintln(w, "\nlatency histograms (cycles):")
		names := make([]string, 0, len(sn.Histograms))
		for n := range sn.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := sn.Histograms[n]
			fmt.Fprintf(w, "  %-20s n=%-8d mean=%-10.0f p50<=%-8d p99<=%-10d max=%d\n",
				n, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}

	fmt.Fprintf(w, "\nattribution identity ok: folded-stack lines sum to %d == machine elapsed\n", sn.TotalCycles)
}

type kv struct {
	k string
	v int64
}

func sortedDesc(m map[string]int64, top int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].k < out[j].k
	})
	if len(out) > top {
		out = out[:top]
	}
	return out
}
