// Command kmonlog runs PostMark with the event monitor attached to
// dcache_lock and a user-space logger consuming the ring through the
// character device — the full Figure 1 pipeline.
//
// Usage:
//
//	kmonlog [-tx n] [-quiet] [-blocking]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sys"
	"repro/internal/vfs"
	"repro/internal/vfs/memfs"
	"repro/internal/workload"
)

func main() {
	tx := flag.Int("tx", 500, "PostMark transactions")
	quiet := flag.Bool("quiet", false, "logger does not write to disk")
	blocking := flag.Bool("blocking", false, "logger uses blocking reads (the paper's proposed fix)")
	flag.Parse()

	s, err := core.New(core.Options{CacheBlocks: 1024})
	if err != nil {
		fatal(err)
	}
	logIO := vfs.NewIOModel(disk.New(disk.SCSI15K()), 4096)
	logIO.DirtyLimit = 16
	if err := s.NS.Mount("/log", memfs.New("logfs", logIO)); err != nil {
		fatal(err)
	}
	s.InstrumentDcache()
	s.Mon.RingEnabled = true

	var done atomic.Bool
	pm := s.Spawn("postmark", func(pr *sys.Proc) error {
		defer done.Store(true)
		cfg := workload.DefaultPostMark()
		cfg.Transactions = *tx
		_, err := workload.PostMark(pr, cfg)
		return err
	})

	lcfg := workload.DefaultLogger()
	lcfg.WriteLog = !*quiet
	lcfg.Blocking = *blocking
	var lst workload.LoggerStats
	lg := s.Spawn("logger", func(pr *sys.Proc) error {
		var err error
		lst, err = workload.Logger(pr, lcfg, done.Load)
		return err
	})

	if err := s.Run(); err != nil {
		fatal(err)
	}

	pu, ps, pw := pm.Times()
	lu, ls, lw := lg.Times()
	fmt.Printf("postmark: user %v, sys %v, wait %v\n", pu, ps, pw)
	fmt.Printf("logger:   user %v, sys %v, wait %v\n", lu, ls, lw)
	fmt.Printf("events: %d logged in kernel, %d delivered to user space, %d dropped (ring full)\n",
		s.Mon.Logged, lst.Events, s.Mon.Ring.Drops.Load())
	fmt.Printf("logger polls: %d (%d empty), %d bytes written to /log\n",
		lst.Polls, lst.EmptyPolls, lst.BytesLogged)
	fmt.Printf("dcache_lock acquisitions: %d\n", s.NS.Dc.Lock.Acquisitions)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmonlog:", err)
	os.Exit(1)
}
