// Command ktop replays a recorded run as a terminal dashboard: the
// simulated-time analogue of top, driven entirely by a kflight record
// so the "live view" is a deterministic replay of what the flight
// recorder sampled.
//
//	ktop -in FILE.json            replay a record written by kprof -flight-out
//	ktop -workload NAME           run the workload now, then render its record
//	     [-epochs N] [-width N]
//
// The dashboard shows, per epoch: syscall rate, TLB hit ratio, and
// attributed cycles per subsystem (sparklines over the whole run plus
// a table of the trailing epochs), the run's top subsystems by total
// attribution delta, syscall-latency quantiles (exact, from the
// power-of-two buckets via kperf.Quantiles), the request tracer's
// latency SLIs (per-operation p50/p90/p99 plus the segment that
// dominates the p99 tail), and every postmortem the recorder cut —
// kills, guard traps, dead extensions — with the trace tail leading
// up to it, each tail event tagged with the traced request that owned
// it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/kflight"
	"repro/internal/ktrace"
)

func main() {
	in := flag.String("in", "", "kflight record to replay (from kprof -flight-out)")
	workload := flag.String("workload", "", "run this workload now instead of replaying (postmark, compile, interactive, dbscan)")
	epochs := flag.Int("epochs", 12, "trailing epochs shown in the table")
	width := flag.Int("width", 48, "sparkline width in cells")
	flag.Parse()

	var rec *kflight.Record
	var err error
	switch {
	case *in != "" && *workload != "":
		err = fmt.Errorf("-in and -workload are mutually exclusive")
	case *in != "":
		rec, err = readRecord(*in)
	case *workload != "":
		rec, err = runWorkload(*workload)
	default:
		err = fmt.Errorf("one of -in or -workload is required")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktop: %v\n", err)
		os.Exit(2)
	}
	render(os.Stdout, rec, *epochs, *width)
}

func readRecord(path string) (*kflight.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kflight.ReadRecord(f)
}

// render draws the whole dashboard.
func render(w *os.File, rec *kflight.Record, tableRows, width int) {
	s := rec.Summary
	var span int64
	if n := len(rec.Epochs); n > 0 {
		span = int64(rec.Epochs[n-1].End)
	}
	fmt.Fprintf(w, "ktop — kflight replay: %d epochs closed (%d retained, %d evicted), %d ticks, %s simulated\n",
		s.Epochs, len(rec.Epochs), s.Evicted, s.Ticks, cycles(span))
	if len(s.Events) > 0 {
		parts := make([]string, 0, len(s.Events))
		for _, k := range sortedKeys(s.Events) {
			parts = append(parts, fmt.Sprintf("%s×%d", k, s.Events[k]))
		}
		fmt.Fprintf(w, "events: %s\n", strings.Join(parts, "  "))
	}
	if len(rec.Epochs) == 0 {
		fmt.Fprintln(w, "no epochs recorded (run shorter than one epoch and no events?)")
		return
	}

	// The same counter-track derivation kprof exports to Chrome traces
	// backs the sparklines, so both views agree by construction.
	tracks := rec.CounterTracks()
	fmt.Fprintln(w, "\nper-epoch series:")
	for _, tr := range tracks {
		vals := make([]float64, len(tr.Points))
		for i, p := range tr.Points {
			vals[i] = p.Value
		}
		lo, hi := minMax(vals)
		fmt.Fprintf(w, "  %-18s %s  min %s  max %s  last %s\n",
			tr.Name, spark(vals, width), num(lo), num(hi), num(vals[len(vals)-1]))
	}

	// Top subsystems by total attribution delta across the retained
	// window.
	totals := map[string]int64{}
	var grand int64
	for _, e := range rec.Epochs {
		for sub, c := range e.SubsysDeltas() {
			totals[sub] += c
			grand += c
		}
	}
	if grand > 0 {
		fmt.Fprintln(w, "\ntop subsystems by attributed cycles (retained window):")
		type kv struct {
			k string
			v int64
		}
		rows := make([]kv, 0, len(totals))
		for k, v := range totals {
			rows = append(rows, kv{k, v})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		for _, r := range rows {
			fmt.Fprintf(w, "  %-10s %16d  %5.1f%%\n", r.k, r.v, 100*float64(r.v)/float64(grand))
		}
	}

	// Syscall-latency quantiles from the last epoch that moved the
	// histogram.
	for i := len(rec.Epochs) - 1; i >= 0; i-- {
		if h, ok := rec.Epochs[i].Hists["sys.span.cycles"]; ok {
			fmt.Fprintf(w, "\nsyscall latency (cumulative at epoch %d): p50<=%d p90<=%d p99<=%d cycles\n",
				rec.Epochs[i].Seq, h.P50, h.P90, h.P99)
			break
		}
	}

	renderSLIs(w, rec)

	// Trailing-epoch table.
	first := len(rec.Epochs) - tableRows
	if first < 0 {
		first = 0
	}
	fmt.Fprintf(w, "\nlast %d epochs:\n", len(rec.Epochs)-first)
	fmt.Fprintf(w, "  %6s %14s %8s %10s %7s  %s\n", "seq", "end", "ticks", "syscalls", "tlb%", "top subsystems by cycle delta")
	gauges := map[string]int64{}
	var rows []string
	for i, e := range rec.Epochs {
		prevCalls := gauges["sys.calls.total"]
		for k, v := range e.Gauges {
			gauges[k] = v
		}
		if i < first {
			continue
		}
		calls := gauges["sys.calls.total"] - prevCalls
		tlb := "-"
		if h, m := gauges["mem.tlb.hits"], gauges["mem.tlb.misses"]; h+m > 0 {
			tlb = fmt.Sprintf("%.1f", 100*float64(h)/float64(h+m))
		}
		rows = append(rows, fmt.Sprintf("  %6d %14d %8d %10d %7s  %s",
			e.Seq, e.End, e.Ticks, calls, tlb, topSubsys(&e, 3)))
	}
	fmt.Fprintln(w, strings.Join(rows, "\n"))

	for _, pm := range rec.Postmortems {
		fmt.Fprintf(w, "\npostmortem [%s] at %s", pm.Kind, cycles(int64(pm.At)))
		if pm.Detail != "" {
			fmt.Fprintf(w, ": %s", pm.Detail)
		}
		fmt.Fprintln(w)
		if n := len(pm.Epochs); n > 0 {
			fmt.Fprintf(w, "  window: epochs %d..%d covering cycles %d..%d\n",
				pm.Epochs[0].Seq, pm.Epochs[n-1].Seq, pm.Epochs[0].Start, pm.Epochs[n-1].End)
		}
		// Request context: which traced operation each process was
		// serving when the dump was cut, keyed by trace id so the tail
		// events below (and kprof -req) cross-reference.
		for _, rc := range pm.Requests {
			fmt.Fprintf(w, "  in flight: %-14s %-20s req=%d\n", rc.Process, rc.Op, rc.TraceID)
		}
		tail := pm.Tail
		const maxTail = 10
		if len(tail) > maxTail {
			fmt.Fprintf(w, "  tail (last %d of %d records):\n", maxTail, len(tail))
			tail = tail[len(tail)-maxTail:]
		} else if len(tail) > 0 {
			fmt.Fprintln(w, "  tail:")
		}
		for _, te := range tail {
			name := te.Kind
			if te.Name != "" {
				name = te.Name
			}
			req := "-"
			if te.Req != 0 {
				req = fmt.Sprintf("req=%d", te.Req)
			}
			fmt.Fprintf(w, "    %-14s %-10s [%d..%d] %s\n", te.Process, name, te.Start, te.End, req)
		}
	}
}

// renderSLIs draws the request tracer's latency panel from the
// summary attached to the record (absent on records written before
// the tracer existed, or when no operation was instrumented).
func renderSLIs(w *os.File, rec *kflight.Record) {
	if len(rec.Ktrace) == 0 {
		return
	}
	sum, err := ktrace.DecodeSummary(rec.Ktrace)
	if err != nil || len(sum.Ops) == 0 {
		return
	}
	fmt.Fprintf(w, "\nrequest latency SLIs (%d requests traced):\n", sum.Requests)
	for i := range sum.Ops {
		o := &sum.Ops[i]
		fmt.Fprintf(w, "  %-20s n=%-7d p50<=%-9d p90<=%-9d p99<=%-10d tail dominated by %s\n",
			o.Op, o.Count, o.P50, o.P90, o.P99, o.TopSeg)
	}
	if sum.IdentityViolations > 0 {
		fmt.Fprintf(w, "  WARNING: %d decomposition identity violations\n", sum.IdentityViolations)
	}
}

// topSubsys renders an epoch's n largest subsystem deltas.
func topSubsys(e *kflight.Epoch, n int) string {
	d := e.SubsysDeltas()
	type kv struct {
		k string
		v int64
	}
	rows := make([]kv, 0, len(d))
	for k, v := range d {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%s:%s", r.k, num(float64(r.v)))
	}
	return strings.Join(parts, " ")
}

// sparkCells are the eighth-block glyphs a sparkline is drawn with.
var sparkCells = []rune("▁▂▃▄▅▆▇█")

// spark renders vals as a width-cell sparkline, bucketing by mean.
func spark(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	cells := make([]float64, 0, width)
	if len(vals) <= width {
		cells = vals
	} else {
		per := float64(len(vals)) / float64(width)
		for i := 0; i < width; i++ {
			lo, hi := int(float64(i)*per), int(float64(i+1)*per)
			if hi > len(vals) {
				hi = len(vals)
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			cells = append(cells, sum/float64(hi-lo))
		}
	}
	lo, hi := minMax(cells)
	var b strings.Builder
	for _, v := range cells {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkCells)-1))
		}
		b.WriteRune(sparkCells[idx])
	}
	return b.String()
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// num renders a value compactly (1.2k, 3.4M, 5.6G).
func num(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av == float64(int64(av)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// cycles renders a cycle count with its wall equivalent at the
// paper's 1.7GHz reference clock.
func cycles(c int64) string {
	return fmt.Sprintf("%s cycles (%.1fms)", num(float64(c)), float64(c)/1.7e6)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
