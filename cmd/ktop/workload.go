package main

import (
	"encoding/json"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kflight"
	"repro/internal/ktrace"
)

// runWorkload boots a flight- and trace-instrumented system, drives
// the named workload to completion, and returns its kflight record —
// the live counterpart of -in, except "live" still means a
// deterministic simulated run sampled host-side. The request tracer's
// latency summary is attached to the record so the SLI panel has data
// in both live and replay modes.
func runWorkload(name string) (*kflight.Record, error) {
	s, err := bench.RunWorkload(name, core.Options{
		Perf:   core.NewPerf(0),
		Flight: &kflight.Config{},
		Trace:  &ktrace.Config{},
	})
	if err != nil {
		return nil, err
	}
	rec := s.Flight.Record()
	if b, err := json.Marshal(s.Ktrace.Summary()); err == nil {
		rec.Ktrace = b
	}
	return rec, nil
}
