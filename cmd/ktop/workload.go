package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kflight"
	"repro/internal/sys"
	"repro/internal/workload"
)

// runWorkload boots a flight-instrumented system, drives the named
// workload to completion, and returns its kflight record — the live
// counterpart of -in, except "live" still means a deterministic
// simulated run sampled host-side.
func runWorkload(name string) (*kflight.Record, error) {
	opts := core.Options{
		Perf:   core.NewPerf(0),
		Flight: &kflight.Config{},
	}
	var s *core.System
	var err error
	switch name {
	case "postmark":
		opts.CacheBlocks = 1024
		if s, err = core.New(opts); err != nil {
			return nil, err
		}
		cfg := workload.DefaultPostMark()
		s.Spawn("postmark", func(pr *sys.Proc) error {
			_, err := workload.PostMark(pr, cfg)
			return err
		})
	case "compile":
		if s, err = core.New(opts); err != nil {
			return nil, err
		}
		cfg := workload.DefaultCompile()
		s.Spawn("compile", func(pr *sys.Proc) error {
			if err := workload.CompileSetup(pr, cfg); err != nil {
				return err
			}
			_, err := workload.Compile(pr, cfg)
			return err
		})
	case "interactive":
		if s, err = core.New(opts); err != nil {
			return nil, err
		}
		cfg := workload.DefaultInteractive()
		s.Spawn("desktop", func(pr *sys.Proc) error {
			if err := workload.InteractiveSetup(pr, cfg); err != nil {
				return err
			}
			_, err := workload.Interactive(pr, cfg)
			return err
		})
	case "dbscan":
		if s, err = core.New(opts); err != nil {
			return nil, err
		}
		cfg := workload.DefaultDB()
		s.Spawn("db", func(pr *sys.Proc) error {
			if err := workload.DBSetup(pr, cfg); err != nil {
				return err
			}
			if _, err := workload.SeqScanUser(pr, cfg); err != nil {
				return err
			}
			_, err := workload.RandScanUser(pr, cfg)
			return err
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want postmark, compile, interactive, or dbscan)", name)
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return s.Flight.Record(), nil
}
