// Package repro reproduces "Efficient and Safe Execution of
// User-Level Code in the Kernel" (Zadok, Callanan, Rai, Sivathanu,
// Traeger; NSF NGS Workshop at IPDPS 2005) as a Go library over a
// simulated Linux-like kernel. See README.md for the architecture and
// EXPERIMENTS.md for the paper-versus-measured results; the public
// entry point is internal/core.
package repro

import (
	"repro/internal/cosy/cc"
	"repro/internal/cosy/lang"
)

type compound = *lang.Compound

// ccCompile is shared by the root benchmarks.
func ccCompile(src string) (compound, error) { return cc.CompileMarked(src, "f") }
