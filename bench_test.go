// Package repro's root benchmark harness: one benchmark per paper
// table/figure (see DESIGN.md's experiment index) plus substrate
// micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark prints the paper-vs-measured table on its
// first iteration; cmd/kucode renders the same tables on demand.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cosy/kext"
	"repro/internal/cosy/lang"
	"repro/internal/kgcc"
	"repro/internal/kprobe"
	"repro/internal/mem"
	"repro/internal/minic"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/splay"
	"repro/internal/sys"
	"repro/internal/workload"
)

func benchTable(b *testing.B, fn func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
			if !tbl.AllPass() {
				b.Errorf("%s has rows outside the acceptance band", tbl.ID)
			}
		}
	}
}

// BenchmarkE1Readdirplus regenerates §2.2's readdirplus table.
func BenchmarkE1Readdirplus(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E1(false, false) })
}

// BenchmarkE2TraceSavings regenerates §2.2's trace-savings projection.
func BenchmarkE2TraceSavings(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E2(false) })
}

// BenchmarkE3CosyMicro regenerates §2.3's micro-benchmarks.
func BenchmarkE3CosyMicro(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E3(false) })
}

// BenchmarkE4CosyApps regenerates §2.3's application benchmarks.
func BenchmarkE4CosyApps(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E4(false) })
}

// BenchmarkE5Kefence regenerates §3.2's Kefence overhead table.
func BenchmarkE5Kefence(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E5(false) })
}

// BenchmarkE6EventMonitor regenerates §3.3's monitoring overheads.
func BenchmarkE6EventMonitor(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E6(false) })
}

// BenchmarkE7KGCC regenerates §3.4's instrumented-module table.
func BenchmarkE7KGCC(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.E7(false) })
}

// BenchmarkE8CheckElimination regenerates §3.4's static statistics.
func BenchmarkE8CheckElimination(b *testing.B) { benchTable(b, bench.E8) }

// Ablation benchmarks (design choices called out in DESIGN.md §5).

func BenchmarkAblationCosySegModes(b *testing.B) { benchTable(b, bench.AblationCosySegModes) }

func BenchmarkAblationKGCCElim(b *testing.B) { benchTable(b, bench.AblationKGCCElim) }

func BenchmarkAblationKefencePlacement(b *testing.B) {
	benchTable(b, bench.AblationKefencePlacement)
}

func BenchmarkAblationKmonBlocking(b *testing.B) { benchTable(b, bench.AblationKmonBlocking) }

func BenchmarkAblationSplayLocality(b *testing.B) { benchTable(b, bench.AblationSplayLocality) }

// --- substrate micro-benchmarks ---
//
// The translation/copy/dispatch bodies live in internal/bench
// (micro.go) so cmd/benchall can record the same numbers into
// BENCH_repro.json; the *MapBaseline variants measure the seed's
// map-backed substrate for the speedup comparison.

// BenchmarkSyscallPath measures the simulated getpid round trip in
// real time (the harness's own overhead per syscall).
func BenchmarkSyscallPath(b *testing.B) { bench.BenchSyscallRoundTrip(b) }

// BenchmarkTranslateHit measures repeat translations of one hot page
// (translation-cache hit path).
func BenchmarkTranslateHit(b *testing.B) { bench.BenchTranslateHit(b) }

// BenchmarkTranslateMiss strides over more pages than the translation
// cache or simulated TLB hold.
func BenchmarkTranslateMiss(b *testing.B) { bench.BenchTranslateMiss(b) }

// BenchmarkWriteBytes measures the bulk-copy path with syscall-sized
// (512B) chunks; the acceptance gate compares it against
// BenchmarkWriteBytesMapBaseline.
func BenchmarkWriteBytes(b *testing.B) { bench.BenchBulkCopy(b, 512) }

// BenchmarkWriteBytesPage measures page-sized bulk copies.
func BenchmarkWriteBytesPage(b *testing.B) { bench.BenchBulkCopy(b, 4096) }

// BenchmarkWriteBytesMapBaseline is the seed's map-based page table
// and frame pool on the same access pattern.
func BenchmarkWriteBytesMapBaseline(b *testing.B) { bench.BenchBulkCopyBaseline(b, 512) }

// BenchmarkWriteBytesPageMapBaseline is the page-sized baseline.
func BenchmarkWriteBytesPageMapBaseline(b *testing.B) { bench.BenchBulkCopyBaseline(b, 4096) }

// BenchmarkReadU64 measures the word path the Cosy VM and KGCC
// interpreter lean on.
func BenchmarkReadU64(b *testing.B) { bench.BenchReadU64(b) }

// BenchmarkSchedulerDispatch measures a yield-dispatch-yield cycle
// between two processes (run-queue hot path).
func BenchmarkSchedulerDispatch(b *testing.B) { bench.BenchSchedulerDispatch(b) }

// BenchmarkCompoundExec measures Cosy compound execution throughput.
func BenchmarkCompoundExec(b *testing.B) {
	s, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := s.CosyEngine(kext.ModeDataSeg)
	src := `
int f(void) {
	COSY_START;
	int s = 0;
	for (int i = 0; i < 100; i++) { s += i; }
	cosy_return(s);
	COSY_END;
	return 0;
}`
	raw, shmSize, err := compileMarked(src)
	if err != nil {
		b.Fatal(err)
	}
	s.Spawn("bench", func(pr *sys.Proc) error {
		shm, err := e.NewShm(shmSize + 64)
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Exec(pr, raw, shm); err != nil {
				return err
			}
		}
		return nil
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func compileMarked(src string) ([]byte, int, error) {
	c, err := ccCompile(src)
	if err != nil {
		return nil, 0, err
	}
	return lang.Encode(c), c.ShmSize, nil
}

// BenchmarkSplayMap measures object-map lookups under locality.
func BenchmarkSplayMap(b *testing.B) {
	var tr splay.Tree[int]
	r := sim.NewRand(1)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64() % (1 << 30)
		tr.Insert(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Find(keys[(i/64)%len(keys)])
	}
}

// BenchmarkLockFreeRing measures the event ring's push/pop pair.
func BenchmarkLockFreeRing(b *testing.B) {
	buf := ring.New[int64](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.TryPush(int64(i))
		buf.TryPop()
	}
}

// BenchmarkMinicInterp measures the mini-C interpreter.
func BenchmarkMinicInterp(b *testing.B) {
	unit, err := minic.CompileSource(`
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i * 3 - (i & 7); }
	return s;
}`)
	if err != nil {
		b.Fatal(err)
	}
	costs := sim.DefaultCosts()
	as := mem.NewAddressSpace("bench", mem.NewPhys(0), &costs)
	ip, err := minic.NewInterp(as, unit)
	if err != nil {
		b.Fatal(err)
	}
	ip.MaxSteps = 1 << 62
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call("work", 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKGCCCheckedInterp measures the same kernel with full BCC
// checks, for the instrumentation slowdown in real time.
func BenchmarkKGCCCheckedInterp(b *testing.B) {
	unit, err := minic.CompileSource(`
int work(int n) {
	int a[64];
	int s = 0;
	for (int i = 0; i < 64; i++) { a[i] = i * n; }
	for (int i = 0; i < 64; i++) { s += a[i]; }
	return s;
}`)
	if err != nil {
		b.Fatal(err)
	}
	kgcc.InstrumentUnit(unit, kgcc.FullChecks())
	costs := sim.DefaultCosts()
	as := mem.NewAddressSpace("bench", mem.NewPhys(0), &costs)
	ip, err := minic.NewInterp(as, unit)
	if err != nil {
		b.Fatal(err)
	}
	ip.MaxSteps = 1 << 62
	m := kgcc.NewMap(&costs, nil)
	kgcc.Attach(ip, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call("work", 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinicEngines compares the tree-walking interpreter with
// the bytecode VM on both in-kernel execution shapes (probe fire and
// ku_call) at several program sizes. The VM rows should show the
// flat-bytecode dispatch win growing with program length, at zero
// allocations per call.
func BenchmarkMinicEngines(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		n := n
		b.Run(fmt.Sprintf("probe/n=%d/interp", n), func(b *testing.B) { bench.BenchMinicProbeInterp(b, n) })
		b.Run(fmt.Sprintf("probe/n=%d/vm", n), func(b *testing.B) { bench.BenchMinicProbeVM(b, n) })
		b.Run(fmt.Sprintf("call/n=%d/interp", n), func(b *testing.B) { bench.BenchMinicCallInterp(b, n) })
		b.Run(fmt.Sprintf("call/n=%d/vm", n), func(b *testing.B) { bench.BenchMinicCallVM(b, n) })
	}
}

// BenchmarkProbeFireE9 measures the host cost of one probe fire of
// E9's exact aggregation program through the Manager dispatch path:
// tracepoint lookup, VM entry, three context helpers, one histogram
// observe, and one hash-map add. This is the paper-relevant hot loop
// the bytecode VM exists for; it must run with zero heap allocations
// per fire.
func BenchmarkProbeFireE9(b *testing.B) {
	s, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	const probeSrc = `
	int probe() {
		int k;
		k = ctx_pid() * 256 + ctx_nr();
		map_hist(0, k, ctx_cycles());
		map_add(1, k, 1);
		return 0;
	}`
	if _, _, err := s.Probes.Attach(kprobe.Spec{
		Tracepoint: kprobe.TpSyscallExit,
		Source:     probeSrc,
		Maps: []kprobe.MapSpec{
			{Name: "lat", Kind: kprobe.MapHist},
			{Name: "calls", Kind: kprobe.MapHash},
		},
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Probes.SyscallExit(1, 3, 64, 0, 1234)
	}
}

// BenchmarkKuCallE10 measures one E10 filt() invocation through the
// ku_call path with full KGCC checks.
func BenchmarkKuCallE10(b *testing.B) { benchKuCall(b, kgcc.FullChecks()) }

// BenchmarkKuCallE10Elided is the same call with kcheck proof-based
// elision (E10's third config), where the interpretation loop itself
// dominates the remaining cost.
func BenchmarkKuCallE10Elided(b *testing.B) { benchKuCall(b, kgcc.KcheckOptions()) }

func benchKuCall(b *testing.B, opts kgcc.Options) {
	const src = `
	int filt(int seed, int rounds) {
		int tab[64];
		int pkt[32];
		int i;
		int r;
		int sum = seed & 63;
		for (i = 0; i < 64; i++) { tab[i] = 0; }
		for (r = 0; r < rounds; r++) {
			for (i = 0; i < 32; i++) { pkt[i] = (seed + r * 31 + i * 7) & 255; }
			for (i = 0; i < 32; i++) { sum = sum + pkt[i]; }
			tab[sum & 63] = tab[sum & 63] + 1;
		}
		int *acc = malloc(64);
		for (i = 0; i < 8; i++) { acc[i] = tab[i * 8]; }
		sum = 0;
		for (i = 0; i < 8; i++) { sum = sum + acc[i]; }
		free(acc);
		return sum;
	}`
	s, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s.Spawn("bench", func(pr *sys.Proc) error {
		id, err := pr.KuLoad(sys.KuSpec{Source: src, Entry: "filt", Checks: opts})
		if err != nil {
			return err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pr.KuCall(id, int64(i&63)*13, 40); err != nil {
				return err
			}
		}
		return nil
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPostMark measures a small PostMark run end to end.
func BenchmarkPostMark(b *testing.B) {
	cfg := workload.DefaultPostMark()
	cfg.InitialFiles, cfg.Transactions = 50, 200
	for i := 0; i < b.N; i++ {
		s, err := core.New(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		s.Spawn("pm", func(pr *sys.Proc) error {
			_, err := workload.PostMark(pr, cfg)
			return err
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
